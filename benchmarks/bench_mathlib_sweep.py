"""Supplementary bench — per-function cross-vendor disagreement.

Companion to the campaign tables, in the spirit of the paper's reference
[4] (Innocente & Zimmermann's direct accuracy study of math functions):
sweep every modeled function over structured ranges and report where the
vendor models disagree.  The campaign's root causes must show up here:
``fmod`` and ``ceil`` are the only functions with *class-changing*
disagreements, and the exact functions never disagree.
"""

from __future__ import annotations

from repro.analysis.function_sweep import sweep_all, sweep_table
from repro.devices.mathlib.base import EXACT_FUNCTIONS
from repro.fp.types import FPType

from conftest import emit


def test_mathlib_disagreement_sweep(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: {
            "fp64": sweep_all(FPType.FP64, points_per_range=60),
            "fp32": sweep_all(FPType.FP32, points_per_range=60),
        },
        rounds=1,
        iterations=1,
    )

    blocks = [
        sweep_table(res, f"Cross-vendor disagreement sweep, {name.upper()}").render()
        for name, res in results.items()
    ]
    emit(results_dir, "mathlib_sweep", "\n\n".join(blocks))

    for name, res in results.items():
        by_func = {r.func: r for r in res}
        # IEEE-exact functions are identical across vendors, always.
        for func in EXACT_FUNCTIONS:
            assert by_func[func].n_disagreements == 0, (name, func)
        # The case-study functions do diverge on these ranges.
        assert by_func["fmod"].n_disagreements > 0
        assert by_func["ceil"].n_disagreements > 0
        # ceil's divergence is class-relevant (0 vs 1 is Zero↔Num).
        assert by_func["ceil"].n_class_changes > 0
        # Transcendentals disagree sparsely, not wildly (default profiles).
        cos = by_func["cos"]
        assert 0 < cos.disagreement_rate < 0.25
