"""Table IV — summary of experimental results.

Paper (652,600 runs):

    Metric                          FP64      FP64+HIPIFY   FP32
    Total Programs                  3,540     3,540         2,840
    Total Discrepancies             2,426     2,716         14,188
    ... (% of Total Runs)           0.98%     1.10%         9.00%

Reproduced shape: discrepancies in every arm; FP32 rate well above FP64;
HIPIFY-converted FP64 at or above native FP64.
"""

from __future__ import annotations

from repro.analysis.summary import summary_dict, summary_table

from conftest import emit


def test_table04_summary(benchmark, campaign_result, results_dir):
    table = benchmark.pedantic(
        lambda: summary_table(campaign_result), rounds=1, iterations=1
    )
    emit(results_dir, "table04_summary", table.render())

    data = summary_dict(campaign_result)
    assert data["fp64"]["total_discrepancies"] > 0
    assert data["fp32"]["total_discrepancies"] > 0
    # FP32 diverges far more than FP64 (paper: 9.00% vs 0.98%).
    assert data["fp32"]["discrepancy_percent"] > data["fp64"]["discrepancy_percent"]
    # HIPIFY conversion does not reduce divergence (paper: 1.10% ≥ 0.98%).
    assert (
        data["fp64_hipify"]["total_discrepancies"]
        >= data["fp64"]["total_discrepancies"]
    )
