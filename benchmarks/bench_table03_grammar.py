"""Table III — characteristics of the random programs.

The paper's Table III lists the grammar features (FP types, arithmetic
operators, math calls, nested loops, conditionals, scalar/array
variables).  This bench audits a freshly generated corpus and reports the
fraction of programs exercising each feature — demonstrating, by
measurement, that the generator covers the documented grammar.
"""

from __future__ import annotations

from repro.ir.metrics import aggregate_metrics
from repro.utils.tables import Table
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus

from conftest import emit

N_PROGRAMS = 300


def test_table03_program_characteristics(benchmark, results_dir):
    def build():
        corpora = {
            "fp64": build_corpus(GeneratorConfig.fp64(), N_PROGRAMS, root_seed=303),
            "fp32": build_corpus(GeneratorConfig.fp32(), N_PROGRAMS, root_seed=303),
        }
        return {
            name: aggregate_metrics(t.program for t in corpus)
            for name, corpus in corpora.items()
        }

    stats = benchmark.pedantic(build, rounds=1, iterations=1)

    table = Table(
        title=f"Table III — Characteristics of the random programs ({N_PROGRAMS} per precision)",
        headers=["Characteristic", "FP64", "FP32"],
    )

    def pct(name, key):
        table.add_row(
            [name] + [f"{100 * stats[p][key]:.0f}% of programs" for p in ("fp64", "fp32")]
        )

    table.add_row([
        "Floating-point types",
        "double throughout",
        "float throughout (f-suffixed calls)",
    ])
    ops64 = stats["fp64"]["binop_histogram"]
    ops32 = stats["fp32"]["binop_histogram"]
    table.add_row([
        "Arithmetic operators used",
        " ".join(sorted(ops64)),
        " ".join(sorted(ops32)),
    ])
    pct("Math-library calls", "frac_with_math_calls")
    pct("for loops", "frac_with_loops")
    pct("Nested loops", "frac_with_nested_loops")
    pct("if conditions", "frac_with_conditionals")
    pct("Boolean expressions", "frac_with_boolean_exprs")
    pct("Temporal variables", "frac_with_temporaries")
    pct("Array variables", "frac_with_arrays")
    table.add_row([
        "Max loop-nesting depth",
        str(stats["fp64"]["max_loop_depth"]),
        str(stats["fp32"]["max_loop_depth"]),
    ])
    emit(results_dir, "table03_grammar", table.render())

    # Table III coverage requirements:
    for p in ("fp64", "fp32"):
        assert set(stats[p]["binop_histogram"]) == {"+", "-", "*", "/"}
        assert stats[p]["frac_with_math_calls"] > 0.5
        assert stats[p]["frac_with_loops"] > 0.4
        assert stats[p]["frac_with_conditionals"] > 0.3
        assert stats[p]["max_loop_depth"] >= 2
