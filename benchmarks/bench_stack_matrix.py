"""Stack-matrix throughput: 2-stack vs 3-stack campaign cost.

The stack registry's pitch is that widening a campaign from the paper's
(nvcc, hipcc) pair to the full 3-choose-2 matrix (adding the CPU clang
lane) buys three differential pairs per precision lane for well under
3x the cost: all pairs of a lane share one corpus and one fused plan
group, so every nvcc-lhs pair replays the lane's nvcc runs from the
content-keyed store instead of re-executing them.  This bench runs the
same grid at both widths and tracks:

* ``runs/sec`` — end-to-end throughput at each width;
* ``cost ratio`` — 3-stack seconds / 2-stack seconds against the 2.5x
  run-count ratio (5 arms → 12... per lane arms vary; the emitted table
  carries the exact counts);
* ``replay rate`` — fraction of the matrix's nvcc-side runs served from
  the store (the cross-arm replay-dedup invariant, asserted: every
  ``@nvcc-*`` pair arm re-executes zero nvcc runs).
"""

from __future__ import annotations

import os
import time

from repro.harness.campaign import CampaignConfig, run_campaign

from conftest import emit


def _programs() -> tuple:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale == "tiny":
        return 8, 6, 2
    if scale == "paper":
        return 220, 180, 4
    return 60, 40, 3


def _config(stacks) -> CampaignConfig:
    fp64, fp32, inputs = _programs()
    return CampaignConfig(
        seed=2024,
        n_programs_fp64=fp64,
        n_programs_fp32=fp32,
        inputs_per_program=inputs,
        stacks=stacks,
    )


def test_stack_matrix_throughput(benchmark, results_dir):
    t0 = time.perf_counter()
    narrow = run_campaign(_config(("nvcc", "hipcc")))
    narrow_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    wide = benchmark.pedantic(
        lambda: run_campaign(_config(("nvcc", "hipcc", "cpu"))),
        rounds=1,
        iterations=1,
    )
    wide_seconds = time.perf_counter() - t0

    # Cross-arm replay dedup, asserted: every nvcc-lhs pair arm beyond
    # the lane's first replays the lane corpus's nvcc runs byte-for-byte
    # from the run store — zero re-executions.
    replayed_hits = 0
    for name, arm in wide.arms.items():
        if "@nvcc-" in name:
            assert arm.nvcc_executions == 0, f"{name} re-executed nvcc runs"
            assert arm.nvcc_cache_hits > 0, f"{name} never touched the store"
            replayed_hits += arm.nvcc_cache_hits
    by_stack = wide.exec_metrics.get("executions_by_stack", {})
    assert set(by_stack) == {"nvcc", "hipcc", "cpu"}

    narrow_rps = narrow.total_runs / narrow_seconds if narrow_seconds else 0.0
    wide_rps = wide.total_runs / wide_seconds if wide_seconds else 0.0
    cost = wide_seconds / narrow_seconds if narrow_seconds else 0.0
    runs_ratio = wide.total_runs / max(1, narrow.total_runs)
    fp64, fp32, inputs = _programs()
    lines = [
        "2-stack vs 3-stack campaign at equal corpus "
        f"(seed=2024, {fp64} fp64 + {fp32} fp32 programs x {inputs} inputs)",
        "",
        f"{'width':<22} {'arms':>5} {'runs':>8} {'seconds':>8} "
        f"{'runs/sec':>9} {'disc':>6}",
        f"{'nvcc,hipcc':<22} {len(narrow.arms):>5} {narrow.total_runs:>8} "
        f"{narrow_seconds:>8.1f} {narrow_rps:>9.1f} "
        f"{narrow.total_discrepancies:>6}",
        f"{'nvcc,hipcc,cpu':<22} {len(wide.arms):>5} {wide.total_runs:>8} "
        f"{wide_seconds:>8.1f} {wide_rps:>9.1f} "
        f"{wide.total_discrepancies:>6}",
        "",
        f"cost ratio: {cost:.2f}x wall clock for {runs_ratio:.2f}x runs",
        f"cross-arm replay: {replayed_hits} nvcc runs served from the store "
        "(every @nvcc-* pair arm executed zero nvcc runs — asserted)",
        "executions by stack: "
        + ", ".join(f"{k}={v}" for k, v in sorted(by_stack.items())),
    ]
    emit(results_dir, "stack_matrix", "\n".join(lines))
