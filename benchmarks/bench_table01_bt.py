"""Table I — BT.S-style inconsistency/runtime tradeoff.

Paper rows (BT.S, NVIDIA nvcc vs CPU clang):

    nvcc  -O0                 0.104s   6.98176E-13
    nvcc  -O3 -use_fast_math  0.052s   9.73738E-13
    clang -O0                 0.349s   8.32928E-13
    clang -O3 -ffast-math     0.059s   3.50905E-12

Reproduced shape: per compiler model, fast math reduces modeled runtime and
increases max relative error; the two stacks' profiles differ.
"""

from __future__ import annotations

from repro.apps.bt import run_bt_experiment
from repro.utils.tables import Table

from conftest import emit


def test_table01_bt_tradeoff(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_bt_experiment(steps=40, repeats=1), rounds=1, iterations=1
    )
    table = Table(
        title="Table I — Inconsistencies in the BT.S-style mini app (measured)",
        headers=["Compiler", "Options", "Runtime (model)", "Max Rel. Error"],
    )
    for row in rows:
        table.add_row(list(row.cells()))
    emit(results_dir, "table01_bt", table.render())

    # The paper's qualitative claims:
    by = {(r.compiler, "fast" in r.options.lower()): r for r in rows}
    assert by[("nvcc", True)].model_cycles < by[("nvcc", False)].model_cycles
    assert by[("hipcc", True)].model_cycles < by[("hipcc", False)].model_cycles
    assert by[("nvcc", True)].max_rel_error >= by[("nvcc", False)].max_rel_error
