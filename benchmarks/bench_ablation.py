"""Ablation bench — attribution of discrepancies to modeled mechanisms.

Not a paper table: this is the reproduction's own design-choice ablation
(DESIGN.md §5).  Equalizing a mechanism between the two stacks and watching
the counts drop is the in-model analogue of the paper's Q3 root-cause
analysis — and the ``all-equalized`` row doubles as a soundness self-check
(zero residual discrepancies ⇒ no unmodeled asymmetry).
"""

from __future__ import annotations

from repro.analysis.ablation import ABLATIONS, ablation_table, run_ablation
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus

from conftest import emit

N_PROGRAMS = 70


def test_ablation_mechanism_attribution(benchmark, results_dir):
    corpora = {
        "fp64": build_corpus(GeneratorConfig.fp64(inputs_per_program=3), N_PROGRAMS, root_seed=5),
        "fp32": build_corpus(GeneratorConfig.fp32(inputs_per_program=3), N_PROGRAMS, root_seed=5),
    }

    def run_both():
        return {name: run_ablation(corpus) for name, corpus in corpora.items()}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    blocks = []
    for name, res in results.items():
        blocks.append(
            ablation_table(res, f"Mechanism ablation, {name.upper()} ({N_PROGRAMS} programs)").render()
        )
    emit(results_dir, "ablation", "\n\n".join(blocks))

    for name, res in results.items():
        by_name = {r.spec.name: r for r in res}
        baseline = by_name["baseline"].total
        assert baseline > 0, f"{name}: baseline found nothing to ablate"
        # Equalizing the math libraries removes every O0 discrepancy
        # (mechanism 1 is the only one active at O0).
        assert by_name["identical-mathlib"].by_opt["O0"] == 0
        # The self-check: with every asymmetry removed, the two stacks are
        # numerically identical.
        assert by_name["all-equalized"].total == 0
        # No ablation can *exceed* removing everything.
        for r in res:
            assert r.total >= 0
