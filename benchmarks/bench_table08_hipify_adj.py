"""Table VIII — HIPIFY-converted FP64 adjacency matrices."""

from __future__ import annotations

from repro.analysis.adjacency import adjacency_counts, adjacency_tables
from repro.analysis.per_opt import per_opt_counts
from repro.fp.classify import OutcomeClass

from conftest import emit


def test_table08_hipify_adjacency(benchmark, campaign_result, results_dir):
    arm = campaign_result.arms["fp64_hipify"]
    tables = benchmark.pedantic(
        lambda: adjacency_tables(
            arm, "Table VIII — HIPIFY-converted FP64 adjacency matrix (measured)"
        ),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table08_hipify_adj", "\n\n".join(t.render() for t in tables))

    counts = per_opt_counts(arm)
    for opt in arm.opt_labels:
        matrix = adjacency_counts(arm, opt)
        off_diag = sum(a + b for (r, c), (a, b) in matrix.items() if r is not c)
        num_num = matrix[(OutcomeClass.NUMBER, OutcomeClass.NUMBER)][0]
        assert off_diag + num_num == sum(counts[opt].values())
