"""Table II — the five IEEE-754 exception events.

The paper's Table II is definitional; the reproducible content is that the
execution substrate *observes* each event class.  This bench runs one
micro-kernel per event and reports the observed sticky flags — the
capability NVIDIA GPUs lack in hardware (§II-B) and our interpreter models.
"""

from __future__ import annotations

from repro.compilers.nvcc import NvccCompiler
from repro.compilers.options import OptLevel, OptSetting
from repro.devices.nvidia import nvidia_v100
from repro.fp.types import FPType
from repro.ir.builder import IRBuilder
from repro.utils.tables import Table

from conftest import emit

_DESCRIPTIONS = {
    "inexact": "Result is produced after rounding",
    "underflow": "Result could not be represented as normal",
    "overflow": "Result did not fit and it is an infinity",
    "divide_by_zero": "Divide-by-zero operation",
    "invalid": "Operation operand is not a number (NaN)",
}


def _event_kernels():
    b = IRBuilder(FPType.FP64)

    def kernel(expr):
        return b.program(b.kernel([b.fparam("comp")], [b.aug("comp", "+", expr)]))

    return {
        # inexact is ubiquitous; 0.1+0.2 rounds.
        "inexact": (kernel(b.add(b.lit(0.1), b.lit(0.2))), 0.0),
        "underflow": (kernel(b.mul(b.lit(1.0e-200), b.lit(1.0e-120))), 0.0),
        "overflow": (kernel(b.mul(b.lit(1.0e308), b.lit(10.0))), 0.0),
        "divide_by_zero": (kernel(b.div(b.lit(1.0), b.raw_lit("+0.0", 0.0))), 0.0),
        "invalid": (kernel(b.div(b.raw_lit("+0.0", 0.0), b.raw_lit("+0.0", 0.0))), 0.0),
    }


def test_table02_exception_events(benchmark, results_dir):
    device = nvidia_v100()
    compiler = NvccCompiler()
    opt = OptSetting(OptLevel.O0)
    kernels = _event_kernels()

    def run_all():
        out = {}
        for event, (program, comp_input) in kernels.items():
            compiled = compiler.compile(program, opt)
            result = device.execute(compiled, [comp_input])
            out[event] = result.flags
        return out

    observed = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        title="Table II — IEEE 754 exception events (observed by the model)",
        headers=["Event", "Description", "Observed"],
    )
    for event, desc in _DESCRIPTIONS.items():
        flags = observed[event]
        if event == "inexact":
            # The model infers events from values (GPU-FPX style), so the
            # ubiquitous inexact event is reported but not counted (§II-B1).
            table.add_row([event, desc, "n/a (uninteresting, excluded)"])
            continue
        table.add_row([event, desc, "yes" if flags[event] > 0 else "NO"])
        assert flags[event] > 0, f"{event} not observed"
    emit(results_dir, "table02_exceptions", table.render())
