"""Figure 1 — the end-to-end testing pipeline.

The figure is the approach diagram: program generator → CUDA/HIP sources →
nvcc/hipcc binaries → NVIDIA/AMD GPUs → result comparison.  This bench
times one full trip through that pipeline per generated test, and verifies
every stage artifact exists.
"""

from __future__ import annotations

from repro.codegen.cuda import render_cuda
from repro.codegen.hip import render_hip
from repro.compilers.options import OptLevel, OptSetting
from repro.harness.runner import DifferentialRunner
from repro.utils.tables import Table
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus

from conftest import emit

N_TESTS = 40


def test_fig01_pipeline_throughput(benchmark, results_dir):
    corpus = build_corpus(
        GeneratorConfig.fp64(inputs_per_program=2), N_TESTS, root_seed=101
    )
    runner = DifferentialRunner()
    opt = OptSetting(OptLevel.O0)

    def full_pipeline():
        n_disc = 0
        for test in corpus:
            cu = render_cuda(test.program)  # artifact: .cu file content
            hip = render_hip(test.program)  # artifact: .hip file content
            assert "__global__" in cu and "hipLaunchKernelGGL" in hip
            pair = runner.run_pair(test, opt)  # compile both + run both
            n_disc += len(pair.discrepancies)
        return n_disc

    n_disc = benchmark.pedantic(full_pipeline, rounds=1, iterations=1)

    table = Table(
        title="Figure 1 — pipeline stages exercised end-to-end (measured)",
        headers=["Stage", "Status"],
    )
    table.add_row(["Program generator (programs + inputs)", f"{N_TESTS} tests"])
    table.add_row(["CUDA rendering (.cu)", "ok"])
    table.add_row(["HIP rendering (.hip)", "ok"])
    table.add_row(["nvcc model → NVIDIA GPU model", "ok"])
    table.add_row(["hipcc model → AMD GPU model", "ok"])
    table.add_row(["Result comparison (discrepancies found)", str(n_disc)])
    emit(results_dir, "fig01_pipeline", table.render())
