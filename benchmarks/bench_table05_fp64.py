"""Table V — FP64 discrepancies per optimization option.

Paper row shape: O0=440, O1=O2=O3=489, O3_FM=519; Num,Num dominates every
row; NaN,Zero and NaN,Num are empty.
"""

from __future__ import annotations

from repro.analysis.per_opt import per_opt_counts, per_opt_table
from repro.harness.differential import DiscrepancyClass

from conftest import emit


def test_table05_fp64_per_opt(benchmark, campaign_result, results_dir):
    arm = campaign_result.arms["fp64"]
    table = benchmark.pedantic(
        lambda: per_opt_table(arm, "Table V — FP64 discrepancies per optimization option (measured)"),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table05_fp64", table.render())

    counts = per_opt_counts(arm)
    # O1/O2/O3 rows identical (the paper measured this; our model makes it exact).
    assert counts["O1"] == counts["O2"] == counts["O3"]
    # Num,Num dominates overall.
    totals = {c: sum(counts[o][c] for o in counts) for c in DiscrepancyClass}
    assert totals[DiscrepancyClass.NUM_NUM] == max(totals.values())
    # Fast math adds discrepancies over O3.
    assert sum(counts["O3_FM"].values()) >= sum(counts["O3"].values())
