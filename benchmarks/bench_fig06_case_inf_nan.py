"""Figure 6 / Case Study 3 — Inf-vs-NaN divergence appearing under
optimization.

Paper: the kernel prints -inf on both platforms at -O0, and at -O1 the
hipcc build switches to -nan — divergence introduced by optimization, not
by a math function.

Our model runs (a) the paper's verbatim kernel (whose published O0
behaviour is not IEEE-derivable — pure IEEE evaluation of the shown input
produces NaN on both platforms; see EXPERIMENTS.md) and (b) an engineered
companion exhibiting the same phenomenon through modeled FMA-contraction
asymmetry: agreement at -O0, Inf (nvcc) vs NaN (hipcc) at -O1.
"""

from __future__ import annotations

from repro.apps.paper_kernels import case3_engineered_testcase, fig6_testcase
from repro.compilers.options import OptLevel, OptSetting
from repro.fp.classify import OutcomeClass, classify_value
from repro.harness.differential import DiscrepancyClass, classify_pair
from repro.harness.runner import DifferentialRunner
from repro.utils.tables import Table

from conftest import emit

O0 = OptSetting(OptLevel.O0)
O1 = OptSetting(OptLevel.O1)


def test_fig06_case_study_inf_nan(benchmark, results_dir):
    runner = DifferentialRunner()
    verbatim = fig6_testcase()
    engineered = case3_engineered_testcase()

    def run_all():
        rows = []
        for name, test in (("fig6-verbatim", verbatim), ("case3-engineered", engineered)):
            for opt in (O0, O1):
                rn, ra, ck_nv, ck_amd = runner.run_single(test, opt, 0)
                rows.append((name, opt.label, rn.printed, ra.printed,
                             ck_nv.passes_applied, ck_amd.passes_applied))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        title="Figure 6 — Inf/NaN behaviour across optimization levels (measured)",
        headers=["Kernel", "Opt", "nvcc output", "hipcc output"],
    )
    for name, opt, nv, amd, _, _ in rows:
        table.add_row([name, opt, nv, amd])
    emit(results_dir, "fig06_case_inf_nan", table.render())

    by = {(name, opt): (nv, amd) for name, opt, nv, amd, _, _ in rows}

    # Verbatim kernel: internally consistent (NaN on both platforms).
    for opt in ("O0", "O1"):
        nv, amd = by[("fig6-verbatim", opt)]
        assert classify_value(float(nv)) is OutcomeClass.NAN
        assert classify_value(float(amd)) is OutcomeClass.NAN

    # Engineered companion: the paper's phenomenon.
    nv0, amd0 = by[("case3-engineered", "O0")]
    assert classify_pair(float(nv0), float(amd0)) is None  # consistent at O0
    nv1, amd1 = by[("case3-engineered", "O1")]
    assert classify_pair(float(nv1), float(amd1)) is DiscrepancyClass.NAN_INF
    assert classify_value(float(nv1)) is OutcomeClass.INF
    assert classify_value(float(amd1)) is OutcomeClass.NAN
