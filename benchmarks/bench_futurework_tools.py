"""Future-work bench — the automated debugging tools of §VII.

Not a paper table: the paper *proposes* "automated debugging tools to
efficiently identify and resolve these inconsistencies, minimizing manual
analysis" as future work; this repository implements them.  The bench runs
both tools over a fresh campaign slice and reports:

* triage — what fraction of discrepancies the cause-attribution engine
  resolves automatically, and to which mechanisms;
* reduction — how small the delta-debugger makes the reproducers.
"""

from __future__ import annotations

from repro.analysis.reduce import reduce_testcase
from repro.analysis.triage import Cause, triage_table, triage_tests
from repro.compilers.options import OptSetting
from repro.harness.campaign import CampaignConfig, run_campaign
from repro.harness.runner import DifferentialRunner
from repro.utils.tables import Table
from repro.varity.corpus import build_corpus

from conftest import emit


def test_futurework_triage_and_reduce(benchmark, results_dir):
    config = CampaignConfig(
        seed=616, n_programs_fp64=90, inputs_per_program=3,
        include_hipify=False, include_fp32=False,
    )
    runner = DifferentialRunner()

    def run_tools():
        result = run_campaign(config)
        arm = result.arms["fp64"]
        corpus = build_corpus(
            config.generator_config(config.arm_fptype("fp64")),
            config.n_programs_fp64,
            config.arm_seed("fp64"),
        )
        tests_by_id = {t.test_id: t for t in corpus}
        verdicts = triage_tests(runner, tests_by_id, arm.discrepancies, limit=20)
        reductions = []
        seen = set()
        for d in arm.discrepancies:
            if d.test_id in seen or len(reductions) >= 6:
                continue
            seen.add(d.test_id)
            reductions.append(
                reduce_testcase(
                    tests_by_id[d.test_id],
                    OptSetting.from_label(d.opt_label),
                    d.input_index,
                    runner=runner,
                )
            )
        return arm, verdicts, reductions

    arm, verdicts, reductions = benchmark.pedantic(run_tools, rounds=1, iterations=1)

    blocks = [triage_table(verdicts, "Automated triage of campaign discrepancies").render()]
    red_table = Table(
        title="Delta-debugging reduction of reproducers",
        headers=["Test", "Class", "Nodes before", "Nodes after", "Shrink"],
    )
    for r in reductions:
        red_table.add_row([
            r.original.test_id,
            r.dclass.value,
            r.original_size,
            r.reduced_size,
            f"{100 * (1 - r.shrink_factor):.0f}%",
        ])
    blocks.append(red_table.render())
    emit(results_dir, "futurework_tools", "\n\n".join(blocks))

    assert verdicts, "campaign produced no discrepancies to triage"
    resolved = [v for v in verdicts if v.cause != Cause.UNKNOWN]
    assert len(resolved) >= 0.7 * len(verdicts)
    assert reductions
    # Reduction never grows a test and usually shrinks it.
    assert all(r.reduced_size <= r.original_size for r in reductions)
    assert any(r.reduced_size < r.original_size for r in reductions)
