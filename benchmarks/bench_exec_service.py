"""Execution-service throughput: serial vs process pool vs warm store.

The workload is the fuzz engine's evaluation shape at default fuzz scale
— one chunk per program holding the native sweep plus its HIPIFY twin
(CUDA half replayed from the content-keyed store) — pushed through the
three execution configurations the redesign enables:

* ``scalar``    — ``SerialBackend`` with the PR-9 hot path switched OFF
  (``RunnerSpec(vectorize=False)`` + ``CachePolicy(artifacts=False)``):
  the per-row interpreter and per-sweep recompiles every earlier PR
  lived with — the baseline the batch speedup is measured against;
* ``serial``    — ``SerialBackend``, cold two-tier ``RunStore`` with a
  disk tier (this pass also writes the store the warm mode reads);
* ``pool``      — ``ProcessPoolBackend``, the same chunks fanned out to
  spawn workers;
* ``bridge``    — ``BridgeBackend`` against an in-process bridge server
  with 2 local ``repro-worker`` processes: the same chunks leased over
  HTTP, executed remotely, and merged back in submission order;
* ``warm``      — ``SerialBackend`` again, reopening the disk store the
  first pass wrote: every CUDA-side run replays, zero nvcc executions.

All modes must produce identical discrepancy sets (the backends'
ordered-results contract).  On multi-core hosts the pool must beat
serial on wall clock and the warm store must beat a cold one; both perf
assertions are informational at tiny (CI smoke) scale, and the pool one
is skipped on single-core machines where no speedup is physically
possible.

The JSON summary lands in ``benchmarks/results/exec_service.json`` — CI
runs this bench in smoke mode and uploads that file as an artifact to
start the perf trajectory.

The pool pass runs under a live tracer: its Chrome trace is written to
``benchmarks/results/exec_service_trace.json`` (loadable in
``chrome://tracing``/Perfetto) and the summary JSON attributes the pool
wall clock to the four backend phases (pickle / queue wait / worker
execute / result wait) — the evidence base for the ROADMAP's
pool-loses-to-serial hot-path item.  Tracing adds a second payload
pickle per chunk, so the pool pass carries a small known overhead.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time

from repro.bridge.client import BridgeBackend
from repro.bridge.server import start_server
from repro.bridge.worker import run_worker
from repro.exec import (
    CachePolicy,
    ExecutionService,
    ProcessPoolBackend,
    RunStore,
    RunnerSpec,
    SHARED_CACHE,
    SerialBackend,
    SweepRequest,
)
from repro.compilers.options import PAPER_OPT_SETTINGS
from repro.telemetry.export import write_chrome_trace
from repro.telemetry.spans import Tracer, set_tracer
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus

from conftest import emit

SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")

#: The phases that tile each chunk's [submit, arrive] interval.
POOL_PHASES = ("pool.pickle", "pool.queue_wait", "pool.execute", "pool.result_wait")


def _union_seconds(records, names):
    """Length of the union of the named spans' intervals, in seconds.

    Overlap across chunks/workers is collapsed, so the result is
    comparable to wall clock: it answers "for what fraction of the run
    was at least one named phase in flight?"."""
    spans = sorted(
        (r.start_ns, r.start_ns + r.dur_ns) for r in records if r.name in names
    )
    total = 0
    cur_start = cur_end = None
    for start, end in spans:
        if cur_end is None or start > cur_end:
            if cur_end is not None:
                total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    if cur_end is not None:
        total += cur_end - cur_start
    return total / 1e9


#: The PR-9 hot path switched off: per-row scalar interpretation and a
#: fresh compile per sweep.  ``batch_speedup`` in the summary JSON is
#: the ratio of this lane to the batched serial lane.
SCALAR_RUNNER = RunnerSpec(vectorize=False)
SCALAR_CACHE = CachePolicy(reuse=True, scope="shared", artifacts=False)


def _workload():
    """One chunk per program: native sweep + HIPIFY twin, fuzz-style.

    Returns the batched chunks plus a scalar-lane copy of the same
    workload (vectorize=False, artifact cache off) for the baseline
    pass."""
    n_programs = {"tiny": 12, "paper": 400}.get(SCALE, 120)
    corpus = build_corpus(
        GeneratorConfig.fp32(inputs_per_program=3), n_programs, root_seed=2024
    )

    def make(cache, runner):
        return [
            [
                SweepRequest(
                    test=t,
                    opts=PAPER_OPT_SETTINGS,
                    tag=("native",),
                    cache=cache,
                    runner=runner,
                ),
                SweepRequest(
                    test=t.hipified(),
                    opts=PAPER_OPT_SETTINGS,
                    tag=("hipify",),
                    cache=cache,
                    runner=runner,
                ),
            ]
            for t in corpus
        ]

    return (
        n_programs,
        make(SHARED_CACHE, RunnerSpec()),
        make(SCALAR_CACHE, SCALAR_RUNNER),
    )


def _run(service, chunks):
    totals = {"pair_runs": 0, "nvcc_executions": 0, "nvcc_cache_hits": 0}
    keys = []
    t0 = time.perf_counter()
    try:
        for outcomes in service.run_sweeps(chunks):
            for o in outcomes:
                totals["pair_runs"] += o.pair_runs
                totals["nvcc_executions"] += o.nvcc_executions
                totals["nvcc_cache_hits"] += o.nvcc_cache_hits
                keys.extend(
                    (o.tag[0], d.test_id, d.input_index, d.opt_label, d.dclass.value)
                    for d in o.iter_discrepancies()
                )
    finally:
        service.close()
    return time.perf_counter() - t0, totals, sorted(keys)


def test_exec_service_throughput(results_dir):
    n_programs, chunks, scalar_chunks = _workload()
    store_path = results_dir / "exec_service.store.jsonl"
    scalar_store_path = results_dir / "exec_service.scalar.store.jsonl"
    for path in (store_path, scalar_store_path):
        if path.exists():
            path.unlink()
    workers = max(2, (os.cpu_count() or 2) - 1)

    scalar_s, scalar_t, scalar_keys = _run(
        ExecutionService(
            SerialBackend(), RunStore(path=scalar_store_path, max_entries=4096)
        ),
        scalar_chunks,
    )
    serial_s, serial_t, serial_keys = _run(
        ExecutionService(SerialBackend(), RunStore(path=store_path, max_entries=4096)),
        chunks,
    )
    # The pool pass runs traced: workers ship span batches back with
    # their results, the backend records the queue/pickle/execute/wait
    # phases, and the merged trace attributes the pool's wall clock.
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        pool_s, pool_t, pool_keys = _run(
            ExecutionService(ProcessPoolBackend(workers)), chunks
        )
    finally:
        set_tracer(previous)
    records = tracer.records()

    # Bridge pass: a real (if colocated) fleet — in-process HTTP server,
    # two spawned repro-worker processes pulling leases over the wire.
    bridge_workers = 2
    queue_db = results_dir / "exec_service.bridge_queue.sqlite"
    if queue_db.exists():
        queue_db.unlink()
    server = start_server(queue_db, lease_seconds=60.0)
    ctx = mp.get_context("spawn")
    procs = [
        ctx.Process(
            target=run_worker,
            args=(server.url,),
            kwargs=dict(
                worker_id=f"bench-w{i}",
                poll_seconds=0.05,
                max_idle_seconds=60.0,
            ),
            daemon=True,
        )
        for i in range(bridge_workers)
    ]
    for p in procs:
        p.start()
    try:
        bridge_s, bridge_t, bridge_keys = _run(
            ExecutionService(BridgeBackend(server.url, poll_seconds=1.0)), chunks
        )
    finally:
        for p in procs:
            p.terminate()
        for p in procs:
            p.join(timeout=10)
        server.close()

    warm_s, warm_t, warm_keys = _run(
        ExecutionService(SerialBackend(), RunStore(path=store_path, max_entries=4096)),
        chunks,
    )

    # Correctness first: every mode finds the same discrepancies and the
    # twin's CUDA half always rides the cache.  The scalar lane is the
    # strongest check — different interpreter path, no artifact cache,
    # same bits.
    assert scalar_keys == serial_keys == pool_keys == bridge_keys == warm_keys
    assert scalar_t == serial_t == pool_t == bridge_t
    assert serial_t["nvcc_cache_hits"] == serial_t["nvcc_executions"]
    # The warm store serves the *entire* CUDA side from disk.
    assert warm_t["nvcc_executions"] == 0
    assert warm_t["pair_runs"] == serial_t["pair_runs"]
    # The batched hot path must win at EVERY scale, including CI smoke —
    # a batched serial pass slower than the scalar baseline means the
    # vector interpreter or the artifact cache regressed.
    assert serial_s < scalar_s, (
        f"batched serial ({serial_s:.2f}s) did not beat the scalar "
        f"baseline ({scalar_s:.2f}s)"
    )

    # Pool wall-clock attribution: the fraction of the pool pass during
    # which at least one named backend phase was in flight.  What the
    # union misses is pool spawn/teardown and the parent's own chunk
    # bookkeeping.
    write_chrome_trace(records, results_dir / "exec_service_trace.json")
    phase_totals = {
        name: round(
            sum(r.dur_ns for r in records if r.name == name) / 1e9, 3
        )
        for name in POOL_PHASES
    }
    attribution = _union_seconds(records, POOL_PHASES) / pool_s if pool_s else 0.0

    multicore = (os.cpu_count() or 1) >= 2
    if SCALE != "tiny":
        # At tiny scale pool spawn/teardown dominates and the bound is
        # not meaningful; at real scale ≥90% of the pool wall must be
        # attributed to named phases.
        assert attribution >= 0.9, (
            f"only {100 * attribution:.0f}% of pool wall time attributed "
            f"to {POOL_PHASES}"
        )
        assert warm_s < serial_s, (
            f"warm store ({warm_s:.1f}s) did not beat cold serial ({serial_s:.1f}s)"
        )
        # The PR-9 acceptance bar: batch interpreter + artifact cache
        # together at least double the serial throughput.
        assert scalar_s / serial_s >= 2.0, (
            f"batch speedup {scalar_s / serial_s:.2f}x < 2x "
            f"(scalar {scalar_s:.1f}s, batched {serial_s:.1f}s)"
        )
        if multicore:
            assert pool_s < serial_s, (
                f"pool backend ({pool_s:.1f}s, workers={workers}) did not beat "
                f"serial ({serial_s:.1f}s)"
            )

    rows = [
        ("scalar baseline", scalar_s, scalar_t),
        ("serial (cold store)", serial_s, serial_t),
        (f"pool (workers={workers})", pool_s, pool_t),
        (f"bridge (workers={bridge_workers})", bridge_s, bridge_t),
        ("serial (warm store)", warm_s, warm_t),
    ]
    lines = [
        f"execution service throughput ({n_programs} fp32 programs, "
        f"native+hipify chunks, 5 opt settings)",
        "",
        f"{'mode':<22} {'seconds':>8} {'runs/s':>8} {'pair runs':>10} "
        f"{'nvcc execs':>11} {'cache hits':>11}",
    ]
    for label, seconds, totals in rows:
        rate = totals["pair_runs"] / seconds if seconds else 0.0
        lines.append(
            f"{label:<22} {seconds:>8.2f} {rate:>8.0f} {totals['pair_runs']:>10} "
            f"{totals['nvcc_executions']:>11} {totals['nvcc_cache_hits']:>11}"
        )
    lines.append("")
    lines.append(
        f"pool wall attribution: {100 * attribution:.0f}% "
        f"({', '.join(f'{k.split(chr(46))[1]} {v:.2f}s' for k, v in phase_totals.items())})"
    )
    emit(results_dir, "exec_service_throughput", "\n".join(lines))

    # The serial-vs-pool gap, explained: worker execute seconds are the
    # useful work (summed across workers, so > wall at high utilization);
    # pickle + queue wait + result wait are the overhead the pool pays
    # that serial never does.
    overhead = (
        phase_totals["pool.pickle"]
        + phase_totals["pool.queue_wait"]
        + phase_totals["pool.result_wait"]
    )
    summary = {
        "scale": SCALE,
        "programs": n_programs,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "pair_runs": serial_t["pair_runs"],
        "scalar_seconds": round(scalar_s, 3),
        "serial_seconds": round(serial_s, 3),
        "pool_seconds": round(pool_s, 3),
        "bridge_seconds": round(bridge_s, 3),
        "bridge_workers": bridge_workers,
        "warm_seconds": round(warm_s, 3),
        # The two PR-9 headline ratios (scalar = per-row interpreter +
        # no artifact cache; serial = the batched default).
        "batch_speedup": round(scalar_s / serial_s, 3) if serial_s else None,
        "pool_vs_serial": round(serial_s / pool_s, 3) if pool_s else None,
        "pool_speedup": round(serial_s / pool_s, 3) if pool_s else None,
        "bridge_speedup": round(serial_s / bridge_s, 3) if bridge_s else None,
        "warm_speedup": round(serial_s / warm_s, 3) if warm_s else None,
        "pool_phase_seconds": phase_totals,
        "pool_wall_attribution": round(attribution, 3),
        "pool_gap_explanation": (
            f"serial {serial_s:.2f}s vs pool {pool_s:.2f}s: workers spent "
            f"{phase_totals['pool.execute']:.2f}s executing (summed across "
            f"{workers} workers) while the pool paid "
            f"{overhead:.2f}s of pickle/queue/result overhead serial never pays"
        ),
    }
    (results_dir / "exec_service.json").write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8"
    )
