"""Figure 2 — a sample generated FP64 test program.

Reproduces the artifact class the figure shows: the paper's own Fig. 2
kernel rendered as a .cu file, plus a freshly generated program exhibiting
the same grammar features (if condition, temporaries, math calls, a
var_1-bounded loop).
"""

from __future__ import annotations

from repro.apps.paper_kernels import fig2_program
from repro.codegen.cuda import render_cuda
from repro.ir.metrics import compute_metrics
from repro.varity.config import GeneratorConfig
from repro.varity.generator import ProgramGenerator

from conftest import emit


def test_fig02_sample_program(benchmark, results_dir):
    gen = ProgramGenerator(GeneratorConfig.fp64())

    def generate_and_render():
        # Find a generated program with the Fig. 2 feature set.
        for seed in range(500):
            program = gen.generate(seed)
            m = compute_metrics(program.kernel)
            if m.n_conditionals >= 1 and m.n_loops >= 1 and m.uses_math and m.n_temporaries >= 1:
                return program, render_cuda(program)
        raise AssertionError("no program with the Fig. 2 feature set in 500 seeds")

    program, source = benchmark.pedantic(generate_and_render, rounds=1, iterations=1)

    paper_source = render_cuda(fig2_program())
    blocks = [
        "Figure 2 — the paper's sample program, rendered by this library:",
        paper_source,
        f"A generated program with the same feature set ({program.program_id}):",
        source,
    ]
    emit(results_dir, "fig02_sample_program", "\n\n".join(blocks))

    for landmark in ("__global__", "void compute(", 'printf("%.17g\\n", comp);'):
        assert landmark in source and landmark in paper_source
