"""Merge nightly benchmark outputs into one trajectory artifact.

The nightly workflow runs three probes — a smoke-budget ``repro-fuzz``
session, ``bench_fuzz_engine.py`` and ``bench_campaign_engine.py`` (both
at ``REPRO_BENCH_SCALE=tiny``, each with ``--benchmark-json``) — and this
script folds whatever they produced under ``benchmarks/results/`` into a
single ``trajectory.json``:

* one ``meta`` block (commit SHA / ref / run id from the GitHub
  environment when present, so points can be ordered across nights);
* one entry per pytest-benchmark JSON (min/mean/max seconds per bench);
* a ``fuzz_smoke`` block summarizing the nightly fuzz ledger (iterations,
  batches, finding count) parsed directly from the JSONL.

Stdlib only, runnable locally::

    python benchmarks/merge_trajectory.py --out benchmarks/results/trajectory.json

Missing inputs are skipped with a note instead of failing: the artifact
should record what the night measured, not hide it behind a crash.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List

RESULTS_DIR = Path(__file__).parent / "results"

#: pytest-benchmark JSON files the nightly produces, keyed by probe name.
#: Absent entries are reported in the artifact's ``skipped`` list.
BENCHMARK_JSONS = {
    "fuzz_engine": "bench_fuzz_engine.json",
    "campaign_engine": "bench_campaign_engine.json",
}

#: Extra summaries folded in when present (produced by other jobs or
#: local runs — the exec-service smoke lives in ci.yml); their absence
#: is expected, so they never appear in ``skipped``.
OPPORTUNISTIC_JSONS = {
    "exec_service_bench": "exec_service.json",
}

FUZZ_LEDGER = "nightly_fuzz.jsonl"


def _meta() -> Dict[str, object]:
    return {
        "commit": os.environ.get("GITHUB_SHA", ""),
        "ref": os.environ.get("GITHUB_REF", ""),
        "run_id": os.environ.get("GITHUB_RUN_ID", ""),
        "scale": os.environ.get("REPRO_BENCH_SCALE", ""),
    }


def _summarize_pytest_benchmark(path: Path) -> object:
    data = json.loads(path.read_text(encoding="utf-8"))
    benches = data.get("benchmarks")
    if benches is None:
        # Not a pytest-benchmark file (e.g. the exec-service bench writes
        # its own summary dict); pass it through verbatim.
        return data
    out: List[Dict[str, object]] = []
    for bench in benches:
        stats = bench.get("stats", {})
        out.append(
            {
                "name": bench.get("name", "?"),
                "min_s": stats.get("min"),
                "mean_s": stats.get("mean"),
                "max_s": stats.get("max"),
                "rounds": stats.get("rounds"),
            }
        )
    return out


def _summarize_fuzz_ledger(path: Path) -> Dict[str, object]:
    iterations = 0
    batches = 0
    findings = 0
    baseline_signatures = 0
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail: the ledger's own readers drop it too
        kind = record.get("kind")
        if kind == "baseline":
            baseline_signatures = len(record.get("signatures", []))
        elif kind == "batch":
            batches += 1
            iterations = max(iterations, int(record.get("stop", 0)))
            findings += len(record.get("findings", []))
    return {
        "iterations": iterations,
        "batches": batches,
        "findings": findings,
        "baseline_signatures": baseline_signatures,
    }


def merge(results_dir: Path) -> Dict[str, object]:
    payload: Dict[str, object] = {"meta": _meta(), "benchmarks": {}, "skipped": []}
    benchmarks: Dict[str, object] = payload["benchmarks"]  # type: ignore[assignment]
    skipped: List[str] = payload["skipped"]  # type: ignore[assignment]
    for name, filename in BENCHMARK_JSONS.items():
        path = results_dir / filename
        if path.exists():
            benchmarks[name] = _summarize_pytest_benchmark(path)
        else:
            skipped.append(filename)
    for name, filename in OPPORTUNISTIC_JSONS.items():
        path = results_dir / filename
        if path.exists():
            benchmarks[name] = _summarize_pytest_benchmark(path)
    ledger = results_dir / FUZZ_LEDGER
    if ledger.exists():
        payload["fuzz_smoke"] = _summarize_fuzz_ledger(ledger)
    else:
        skipped.append(FUZZ_LEDGER)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir", type=Path, default=RESULTS_DIR, help="input directory"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=RESULTS_DIR / "trajectory.json",
        help="merged artifact path",
    )
    args = parser.parse_args(argv)
    payload = merge(args.results_dir)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    if payload["skipped"]:
        print(f"skipped missing inputs: {', '.join(payload['skipped'])}", file=sys.stderr)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
