"""Merge nightly benchmark outputs into one trajectory artifact.

The nightly workflow runs five probes — a smoke-budget ``repro-fuzz``
session, ``bench_fuzz_engine.py``, ``bench_campaign_engine.py``,
``bench_oracle.py`` and ``bench_stack_matrix.py`` (benches at
``REPRO_BENCH_SCALE=tiny``, each with
``--benchmark-json``) — and this script folds whatever they produced
under ``benchmarks/results/`` into a single ``trajectory.json``:

* one ``meta`` block (commit SHA / ref / run id from the GitHub
  environment when present, so points can be ordered across nights);
* one entry per pytest-benchmark JSON (min/mean/max seconds per bench);
* a ``fuzz_smoke`` block summarizing the nightly fuzz ledger (iterations,
  batches, finding count) parsed directly from the JSONL;
* a ``bridge`` block lifted from the exec-service summary when that run
  included the bridge lane (seconds / workers / speedup vs serial);
* a ``fuzz_yield`` block from the bench_fuzz_engine search lane when it
  ran (mcts vs hybrid vs blind novel-signature and oracle-violation
  yield at equal budget).

New benches and lanes are gate-safe on first appearance by
construction: the regression gate compares only pytest-benchmark
entries present in *both* artifacts, pass-through summaries (the
exec-service dict, and the ``bridge`` block lifted from it) carry no
comparable timing shape, and ``only_current`` / ``only_baseline``
benches are recorded but never fail — so adding a lane can never trip
the >2x gate the night it lands.

**Regression gate** (``--baseline``): given the previous night's
``trajectory.json``, every bench present in both artifacts is compared
by mean runtime; slowdowns beyond ``--fail-threshold`` (a ratio — 2.0
means "took twice as long") are recorded in a ``regression`` block and,
when the threshold is set, fail the job with exit code 3.  The merged
artifact is always written *before* the gate exits, so the night's
measurement survives even when the gate trips (upload it with
``if: always()``).  A missing baseline is a note, not a failure — the
first night has nothing to compare against.

Stdlib only, runnable locally::

    python benchmarks/merge_trajectory.py --out benchmarks/results/trajectory.json
    python benchmarks/merge_trajectory.py --baseline previous/trajectory.json \\
        --fail-threshold 2.0

Missing inputs are skipped with a note instead of failing: the artifact
should record what the night measured, not hide it behind a crash.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List

RESULTS_DIR = Path(__file__).parent / "results"

#: pytest-benchmark JSON files the nightly produces, keyed by probe name.
#: Absent entries are reported in the artifact's ``skipped`` list.
BENCHMARK_JSONS = {
    "fuzz_engine": "bench_fuzz_engine.json",
    "campaign_engine": "bench_campaign_engine.json",
    "oracle": "bench_oracle.json",
    "stack_matrix": "bench_stack_matrix.json",
}

#: Extra summaries folded in when present (produced by other jobs or
#: local runs — the exec-service smoke lives in ci.yml); their absence
#: is expected, so they never appear in ``skipped``.
OPPORTUNISTIC_JSONS = {
    "exec_service_bench": "exec_service.json",
}

FUZZ_LEDGER = "nightly_fuzz.jsonl"

#: Summary the bench_fuzz_engine search lane writes: per-arm
#: novel-signature and oracle-violation yield for mcts / hybrid / blind
#: at equal iteration budget.  Optional like the opportunistic JSONs
#: (the lane may not have run), folded into a first-class ``fuzz_yield``
#: block so the strategy gap trends night over night.
SEARCH_YIELD = "fuzz_search_yield.json"

#: Flat metrics snapshot written by ``--metrics-out`` during the fuzz
#: smoke; its ``*_seconds`` counters become the ``phases`` block so the
#: regression gate can name the phase that got slower, not just the
#: bench.  Optional like the opportunistic JSONs.
METRICS_SNAPSHOT = "metrics_snapshot.json"


def _summarize_metrics_snapshot(path: Path) -> Dict[str, float]:
    """``*_seconds`` counters from a telemetry snapshot → phase seconds."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return {}
    if not isinstance(data, dict):
        return {}
    counters = data.get("counters", {})
    if not isinstance(counters, dict):
        return {}
    return {
        name: float(value)
        for name, value in sorted(counters.items())
        if name.endswith("_seconds") and isinstance(value, (int, float))
    }


def _summarize_search_yield(path: Path) -> Dict[str, object]:
    """The search lane's summary → the trajectory's ``fuzz_yield`` block.

    Keeps the scalar trend lines (the mcts-vs-hybrid ratio and each
    arm's per-krun rates) and drops the per-arm bookkeeping; a malformed
    file yields an empty dict (the lane is optional, never a crash).
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return {}
    if not isinstance(data, dict):
        return {}
    arms = data.get("arms", {})
    if not isinstance(arms, dict):
        arms = {}
    out: Dict[str, object] = {
        "scale": data.get("scale", ""),
        "budget": data.get("budget", 0),
        "mcts_vs_hybrid_ratio": data.get("mcts_vs_hybrid_ratio"),
    }
    for name, arm in sorted(arms.items()):
        if not isinstance(arm, dict):
            continue
        out[f"{name}_novel_per_krun"] = arm.get("novel_per_krun")
        out[f"{name}_violations_per_krun"] = arm.get("violations_per_krun")
    tree = data.get("tree", {})
    if isinstance(tree, dict):
        out["tree_nodes"] = tree.get("nodes")
        out["tree_max_depth"] = tree.get("max_depth")
        out["coverage_features"] = tree.get("coverage_features")
    return out


def _meta() -> Dict[str, object]:
    return {
        "commit": os.environ.get("GITHUB_SHA", ""),
        "ref": os.environ.get("GITHUB_REF", ""),
        "run_id": os.environ.get("GITHUB_RUN_ID", ""),
        "scale": os.environ.get("REPRO_BENCH_SCALE", ""),
    }


def _summarize_pytest_benchmark(path: Path) -> object:
    data = json.loads(path.read_text(encoding="utf-8"))
    benches = data.get("benchmarks")
    if benches is None:
        # Not a pytest-benchmark file (e.g. the exec-service bench writes
        # its own summary dict); pass it through verbatim.
        return data
    out: List[Dict[str, object]] = []
    for bench in benches:
        stats = bench.get("stats", {})
        out.append(
            {
                "name": bench.get("name", "?"),
                "min_s": stats.get("min"),
                "mean_s": stats.get("mean"),
                "max_s": stats.get("max"),
                "rounds": stats.get("rounds"),
            }
        )
    return out


def _summarize_fuzz_ledger(path: Path) -> Dict[str, object]:
    iterations = 0
    batches = 0
    findings = 0
    baseline_signatures = 0
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail: the ledger's own readers drop it too
        kind = record.get("kind")
        if kind == "baseline":
            baseline_signatures = len(record.get("signatures", []))
        elif kind == "batch":
            batches += 1
            iterations = max(iterations, int(record.get("stop", 0)))
            findings += len(record.get("findings", []))
    return {
        "iterations": iterations,
        "batches": batches,
        "findings": findings,
        "baseline_signatures": baseline_signatures,
    }


def _bench_means(payload: Dict[str, object]) -> Dict[str, float]:
    """Flatten a trajectory's benchmarks to ``{probe::bench: mean_s}``.

    Only pytest-benchmark entries (lists of per-bench stats) participate
    in the gate; pass-through summaries (the exec-service bench's own
    dict) carry no comparable timing shape.
    """
    out: Dict[str, float] = {}
    benchmarks = payload.get("benchmarks", {})
    if not isinstance(benchmarks, dict):
        return out
    for probe, entry in benchmarks.items():
        if not isinstance(entry, list):
            continue
        for bench in entry:
            name = bench.get("name", "?")
            mean = bench.get("mean_s")
            if isinstance(mean, (int, float)) and mean > 0:
                out[f"{probe}::{name}"] = float(mean)
    return out


def compare_against_baseline(
    payload: Dict[str, object], baseline: Dict[str, object], threshold: float
) -> Dict[str, object]:
    """Per-bench throughput comparison: current mean vs the baseline's.

    Returns the ``regression`` block: every common bench's slowdown
    ratio (current/previous; >1 is slower), the benches beyond
    ``threshold``, and the benches only one side measured (never a
    failure — a renamed bench must not wedge the nightly forever).
    """
    current = _bench_means(payload)
    previous = _bench_means(baseline)
    common = sorted(current.keys() & previous.keys())
    ratios = {name: current[name] / previous[name] for name in common}
    failures = sorted(name for name, r in ratios.items() if r > threshold)
    meta = baseline.get("meta", {})
    # Phase-level ratios (telemetry snapshot seconds): informational,
    # never a failure by themselves — they exist so a failing bench can
    # be blamed on the phase that actually slowed down.
    cur_phases = payload.get("phases", {})
    prev_phases = baseline.get("phases", {})
    phase_ratios: Dict[str, float] = {}
    if isinstance(cur_phases, dict) and isinstance(prev_phases, dict):
        for name in sorted(cur_phases.keys() & prev_phases.keys()):
            cur_v, prev_v = cur_phases[name], prev_phases[name]
            if (
                isinstance(cur_v, (int, float))
                and isinstance(prev_v, (int, float))
                and prev_v > 0
            ):
                phase_ratios[name] = round(float(cur_v) / float(prev_v), 4)
    return {
        "baseline_commit": meta.get("commit", "") if isinstance(meta, dict) else "",
        "threshold": threshold,
        "ratios": {name: round(r, 4) for name, r in ratios.items()},
        "failures": failures,
        "phase_ratios": phase_ratios,
        "only_current": sorted(current.keys() - previous.keys()),
        "only_baseline": sorted(previous.keys() - current.keys()),
    }


def merge(results_dir: Path) -> Dict[str, object]:
    payload: Dict[str, object] = {"meta": _meta(), "benchmarks": {}, "skipped": []}
    benchmarks: Dict[str, object] = payload["benchmarks"]  # type: ignore[assignment]
    skipped: List[str] = payload["skipped"]  # type: ignore[assignment]
    for name, filename in BENCHMARK_JSONS.items():
        path = results_dir / filename
        if path.exists():
            benchmarks[name] = _summarize_pytest_benchmark(path)
        else:
            skipped.append(filename)
    for name, filename in OPPORTUNISTIC_JSONS.items():
        path = results_dir / filename
        if path.exists():
            benchmarks[name] = _summarize_pytest_benchmark(path)
    # Lift the bridge lane out of the exec-service summary so the fleet's
    # trajectory is a first-class block, not a field buried in a
    # pass-through dict.  Gate-safe: nothing here has the per-bench list
    # shape ``_bench_means`` folds into the comparison.
    exec_summary = benchmarks.get("exec_service_bench")
    if isinstance(exec_summary, dict) and "bridge_seconds" in exec_summary:
        payload["bridge"] = {
            "seconds": exec_summary.get("bridge_seconds"),
            "workers": exec_summary.get("bridge_workers"),
            "speedup_vs_serial": exec_summary.get("bridge_speedup"),
        }
    # Same treatment for the PR-9 hot-path ratios: batch_speedup is the
    # scalar-baseline-vs-batched-serial gain, pool_vs_serial the pool's
    # gain over batched serial.  Both trend night over night.
    if isinstance(exec_summary, dict) and "batch_speedup" in exec_summary:
        payload["hot_path"] = {
            "batch_speedup": exec_summary.get("batch_speedup"),
            "pool_vs_serial": exec_summary.get("pool_vs_serial"),
            "scalar_seconds": exec_summary.get("scalar_seconds"),
            "serial_seconds": exec_summary.get("serial_seconds"),
            "pool_seconds": exec_summary.get("pool_seconds"),
        }
    ledger = results_dir / FUZZ_LEDGER
    if ledger.exists():
        payload["fuzz_smoke"] = _summarize_fuzz_ledger(ledger)
    else:
        skipped.append(FUZZ_LEDGER)
    # The search-strategy yield comparison: mcts vs hybrid vs blind
    # novel-signature and oracle-violation rates at equal budget.
    # Gate-safe like bridge/hot_path — a dict, not a per-bench list.
    search_yield = results_dir / SEARCH_YIELD
    if search_yield.exists():
        summary = _summarize_search_yield(search_yield)
        if summary:
            payload["fuzz_yield"] = summary
    snapshot = results_dir / METRICS_SNAPSHOT
    if snapshot.exists():
        phases = _summarize_metrics_snapshot(snapshot)
        if phases:
            payload["phases"] = phases
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir", type=Path, default=RESULTS_DIR, help="input directory"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=RESULTS_DIR / "trajectory.json",
        help="merged artifact path",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="previous night's trajectory.json to compare against "
        "(missing file: comparison skipped with a note)",
    )
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=None,
        help="fail (exit 3) when any common bench's mean slows down by "
        "more than this ratio vs the baseline (e.g. 2.0 = twice as slow); "
        "without it the comparison is recorded but never fails",
    )
    args = parser.parse_args(argv)
    if args.fail_threshold is not None and args.fail_threshold <= 1.0:
        parser.error(
            f"--fail-threshold must be > 1.0 (got {args.fail_threshold})"
        )
    if args.fail_threshold is not None and args.baseline is None:
        parser.error("--fail-threshold requires --baseline")

    payload = merge(args.results_dir)
    regression: Dict[str, object] = {}
    if args.baseline is not None:
        if args.baseline.exists():
            try:
                baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                # Missing-at-read or partially-written (torn) artifact:
                # the first night after a retention gap must pass with a
                # note, never require manual handling.
                print(
                    f"baseline {args.baseline} is missing or not valid JSON; "
                    "comparison skipped",
                    file=sys.stderr,
                )
                baseline = None
            if baseline is not None and not isinstance(baseline, dict):
                print(
                    f"baseline {args.baseline} is valid JSON but not a "
                    "trajectory object; comparison skipped",
                    file=sys.stderr,
                )
                baseline = None
            if baseline is not None:
                regression = compare_against_baseline(
                    payload,
                    baseline,
                    args.fail_threshold if args.fail_threshold is not None else 2.0,
                )
                payload["regression"] = regression
        else:
            print(
                f"baseline {args.baseline} not found (first night?); "
                "comparison skipped",
                file=sys.stderr,
            )

    # Write the artifact BEFORE the gate can fail: the measurement must
    # survive a tripped gate so the next night has a baseline.
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    if payload["skipped"]:
        print(f"skipped missing inputs: {', '.join(payload['skipped'])}", file=sys.stderr)
    print(f"wrote {args.out}")

    failures = regression.get("failures", [])
    if regression and failures:
        ratios = regression.get("ratios", {})
        phase_ratios = regression.get("phase_ratios", {})
        # Name the phase that slowed down the most, when the telemetry
        # snapshot gives us one — "this phase got slower", not just
        # "runs/s went down".
        blame = ""
        slowed = {n: r for n, r in phase_ratios.items() if r > 1.0}
        if slowed:
            worst = max(slowed, key=lambda n: slowed[n])
            blame = f" (slowest-growing phase: {worst} at {slowed[worst]:.2f}x)"
        for name in failures:
            print(
                f"REGRESSION: {name} slowed down {ratios.get(name, 0.0):.2f}x "
                f"vs baseline {regression.get('baseline_commit', '')[:12]}"
                f"{blame}",
                file=sys.stderr,
            )
        if args.fail_threshold is not None:
            return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
