"""Figure 5 / Case Study 2 — ceil-rooted Inf-vs-Num divergence at -O0.

Paper:

    Input : +1.2374E-306
    nvcc  -O0: Inf
    hipcc -O0: 1.34887e-306
    ceil(1.5955E-125): nvcc → 0, hipcc → 1

This reproduction is bit-exact end to end, including the printed
``1.34887e-306``.
"""

from __future__ import annotations

from repro.analysis.case_studies import isolate_divergence
from repro.apps.paper_kernels import fig5_testcase
from repro.compilers.options import OptLevel, OptSetting
from repro.devices.mathlib.rounding_ops import amd_ceil, nvidia_ceil
from repro.harness.runner import DifferentialRunner

from conftest import emit


def test_fig05_case_study_ceil(benchmark, results_dir):
    runner = DifferentialRunner()
    test = fig5_testcase()
    opt = OptSetting(OptLevel.O0)

    report = benchmark.pedantic(
        lambda: isolate_divergence(runner, test, opt, 0), rounds=1, iterations=1
    )

    lines = [
        report.render(),
        "",
        "Isolated expression (paper Fig. 5, third panel):",
        f"  ceil(1.5955E-125): nvcc model → {nvidia_ceil(1.5955e-125):g}, "
        f"hipcc model → {amd_ceil(1.5955e-125):g}",
        "  paper            : nvcc → 0, hipcc → 1",
        "",
        "Outputs vs paper:",
        f"  nvcc  -O0: {report.nvcc_printed}   (paper: Inf)",
        f"  hipcc -O0: {report.hipcc_printed}   (paper: 1.34887e-306)",
    ]
    emit(results_dir, "fig05_case_ceil", "\n".join(lines))

    # Bit-exact reproduction of the paper's published outputs:
    assert report.nvcc_printed == "inf"
    assert report.hipcc_printed == "1.34887e-306"
    assert nvidia_ceil(1.5955e-125) == 0.0
    assert amd_ceil(1.5955e-125) == 1.0
