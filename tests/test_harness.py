"""Tests for the differential-testing harness."""

from __future__ import annotations

import math

import pytest

from dataclasses import replace

from repro.compilers.options import OptLevel, OptSetting, PAPER_OPT_SETTINGS
from repro.errors import GrammarError, HarnessError, MetadataError, TrapError
from repro.fp.classify import OutcomeClass
from repro.fp.types import FPType
from repro.harness.campaign import ArmResult, CampaignConfig, run_campaign
from repro.harness.differential import (
    DISCREPANCY_CLASS_ORDER,
    Discrepancy,
    DiscrepancyClass,
    classify_pair,
    compare_runs,
)
from repro.harness.metadata import CampaignMetadata, RunStore
from repro.harness.outcomes import RunRecord
from repro.exec import RunStore as ExecRunStore
from repro.harness.runner import DifferentialRunner, pair_discrepancies
from repro.harness.transfer import (
    SYSTEM1,
    SYSTEM2,
    between_platform_campaign,
    collect_discrepancies,
    run_system1,
    run_system2,
)
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus

O0 = OptSetting(OptLevel.O0)


def _record(value: float, compiler: str = "nvcc", printed=None) -> RunRecord:
    return RunRecord(
        test_id="t", input_index=0, opt_label="O0", compiler=compiler,
        printed=printed if printed is not None else repr(value), value=value,
    )


# ------------------------------------------------------------ differential
class TestClassifyPair:
    @pytest.mark.parametrize("a,b,expected", [
        (math.nan, math.inf, DiscrepancyClass.NAN_INF),
        (math.nan, 0.0, DiscrepancyClass.NAN_ZERO),
        (math.nan, 1.5, DiscrepancyClass.NAN_NUM),
        (math.inf, 0.0, DiscrepancyClass.INF_ZERO),
        (-math.inf, 2.0, DiscrepancyClass.INF_NUM),
        (3.0, 0.0, DiscrepancyClass.NUM_ZERO),
        (3.0, 3.0000001, DiscrepancyClass.NUM_NUM),
    ])
    def test_classes(self, a, b, expected):
        assert classify_pair(a, b) is expected
        assert classify_pair(b, a) is expected  # class is unordered

    @pytest.mark.parametrize("a,b", [
        (math.nan, -math.nan),
        (math.inf, -math.inf),
        (0.0, -0.0),
        (1.5, 1.5),
    ])
    def test_equivalent_pairs_are_none(self, a, b):
        assert classify_pair(a, b) is None

    def test_class_order_matches_paper_columns(self):
        assert [c.value for c in DISCREPANCY_CLASS_ORDER] == [
            "NaN, Inf", "NaN, Zero", "NaN, Num", "Inf, Zero",
            "Inf, Num", "Num, Zero", "Num, Num",
        ]


class TestDiscrepancyRecords:
    def test_from_records(self):
        d = Discrepancy.from_records(_record(1.0), _record(2.0, "hipcc"))
        assert d is not None and d.dclass is DiscrepancyClass.NUM_NUM
        assert d.nvcc_outcome is OutcomeClass.NUMBER

    def test_equivalent_records_give_none(self):
        assert Discrepancy.from_records(_record(1.0), _record(1.0, "hipcc")) is None

    def test_mismatched_keys_rejected(self):
        other = RunRecord("u", 0, "O0", "hipcc", "1.0", 1.0)
        with pytest.raises(ValueError):
            Discrepancy.from_records(_record(1.0), other)

    def test_compare_runs_joins(self):
        nv = [_record(1.0), RunRecord("t", 1, "O0", "nvcc", "inf", math.inf)]
        hip = [_record(1.0, "hipcc"), RunRecord("t", 1, "O0", "hipcc", "5", 5.0)]
        out = compare_runs(nv, hip)
        assert len(out) == 1 and out[0].dclass is DiscrepancyClass.INF_NUM

    def test_compare_runs_missing_pair_rejected(self):
        with pytest.raises(ValueError):
            compare_runs([_record(1.0)], [])

    def test_json_dict(self):
        d = Discrepancy.from_records(_record(1.0), _record(2.0, "hipcc"))
        data = d.to_json_dict()
        assert data["class"] == "Num, Num" and data["test_id"] == "t"


# ------------------------------------------------------------------ runner
class TestDifferentialRunner:
    def test_run_pair_counts(self, runner, small_fp64_corpus):
        pair = runner.run_pair(small_fp64_corpus.tests[0], O0)
        n = len(small_fp64_corpus.tests[0].inputs)
        assert len(pair.nvcc_runs) == len(pair.hipcc_runs) == n - len(pair.skipped_inputs)

    def test_records_carry_identity(self, runner, small_fp64_corpus):
        t = small_fp64_corpus.tests[1]
        pair = runner.run_pair(t, O0)
        for r in pair.nvcc_runs:
            assert r.test_id == t.test_id and r.compiler == "nvcc" and r.opt_label == "O0"

    def test_printed_parses_back(self, runner, small_fp64_corpus):
        pair = runner.run_pair(small_fp64_corpus.tests[2], O0)
        for r in pair.nvcc_runs + pair.hipcc_runs:
            v = float(r.printed)
            assert v == r.value or (math.isnan(v) and math.isnan(r.value))

    def test_flags_recording_optional(self, small_fp64_corpus):
        plain = DifferentialRunner()
        rec = DifferentialRunner(record_flags=True)
        t = small_fp64_corpus.tests[0]
        assert plain.run_pair(t, O0).nvcc_runs[0].flags is None
        assert rec.run_pair(t, O0).nvcc_runs[0].flags is not None

    def test_run_single_traces(self, runner, small_fp64_corpus):
        rn, ra, ck_nv, ck_amd = runner.run_single(small_fp64_corpus.tests[0], O0, 0, trace=True)
        assert ck_nv.vendor.value == "nvidia" and ck_amd.vendor.value == "amd"
        # O0 compiles are untransformed → statement-aligned traces.
        assert [e.path for e in rn.trace] == [e.path for e in ra.trace]


# ---------------------------------------------------------------- campaign
class TestCampaign:
    def test_tiny_campaign_accounting(self):
        config = CampaignConfig.tiny(seed=11)
        result = run_campaign(config)
        assert set(result.arms) == {"fp64", "fp64_hipify", "fp32"}
        fp64 = result.arms["fp64"]
        assert fp64.n_programs == config.n_programs_fp64
        assert fp64.runs_per_option == 2 * fp64.runs_per_option_per_compiler
        assert fp64.total_runs == fp64.runs_per_option * 5
        assert result.total_runs == sum(a.total_runs for a in result.arms.values())

    def test_fp16_arms_follow_hipify_gating(self):
        import dataclasses

        base = CampaignConfig.tiny(seed=11)
        pair = dataclasses.replace(base, include_fp16=True)
        assert pair.arm_names() == ["fp64", "fp64_hipify", "fp32", "fp16", "fp16_hipify"]
        # --no-hipify skips BOTH hipify arms, fp16's included.
        nohip = dataclasses.replace(base, include_fp16=True, include_hipify=False)
        assert nohip.arm_names() == ["fp64", "fp32", "fp16"]

    def test_fingerprint_backward_compatible_without_fp16(self):
        """Configs without the fp16 arms fingerprint exactly as before the
        FP16 lane, so pre-FP16 checkpoints keep resuming."""
        import dataclasses

        base = CampaignConfig.tiny(seed=11)
        fp = base.fingerprint()
        assert "include_fp16" not in fp and "n_programs_fp16" not in fp
        # n_programs_fp16 is inert while the arms are off...
        assert dataclasses.replace(base, n_programs_fp16=999).fingerprint() == fp
        # ...and fingerprinted once they are on.
        on = dataclasses.replace(base, include_fp16=True).fingerprint()
        assert on["include_fp16"] is True and on["n_programs_fp16"] == base.n_programs_fp16

    def test_campaign_deterministic(self):
        config = CampaignConfig(
            seed=5, n_programs_fp64=10, n_programs_fp32=6, inputs_per_program=2
        )
        a = run_campaign(config)
        b = run_campaign(config)
        for arm in a.arms:
            da = [(d.test_id, d.input_index, d.opt_label, d.dclass) for d in a.arms[arm].discrepancies]
            db = [(d.test_id, d.input_index, d.opt_label, d.dclass) for d in b.arms[arm].discrepancies]
            assert da == db

    def test_hipify_arm_shares_tests_with_fp64(self):
        config = CampaignConfig(
            seed=5, n_programs_fp64=8, n_programs_fp32=4, inputs_per_program=2
        )
        result = run_campaign(config)
        # arm accounting identical: same programs, same inputs
        assert (
            result.arms["fp64"].runs_per_option_per_compiler
            == result.arms["fp64_hipify"].runs_per_option_per_compiler
        )

    def test_arms_can_be_disabled(self):
        config = CampaignConfig(
            seed=5, n_programs_fp64=5, inputs_per_program=2,
            include_hipify=False, include_fp32=False,
        )
        result = run_campaign(config)
        assert set(result.arms) == {"fp64"}

    def test_parallel_matches_serial(self):
        serial = CampaignConfig(
            seed=9, n_programs_fp64=16, inputs_per_program=2,
            include_hipify=False, include_fp32=False, workers=0,
        )
        parallel = CampaignConfig(
            seed=9, n_programs_fp64=16, inputs_per_program=2,
            include_hipify=False, include_fp32=False, workers=2,
        )
        ra = run_campaign(serial)
        rb = run_campaign(parallel)
        key = lambda d: (d.test_id, d.input_index, d.opt_label, d.dclass.value)
        assert sorted(map(key, ra.arms["fp64"].discrepancies)) == sorted(
            map(key, rb.arms["fp64"].discrepancies)
        )
        assert ra.arms["fp64"].total_runs == rb.arms["fp64"].total_runs

    def test_arm_result_merge_guard(self):
        a = ArmResult("fp64", 1, ("O0",), {"O0": 5})
        b = ArmResult("fp32", 1, ("O0",), {"O0": 5})
        with pytest.raises(HarnessError):
            a.merge(b)

    def test_arm_result_merge_sums_per_opt(self):
        a = ArmResult("fp64", 2, ("O0", "O3"), {"O0": 5, "O3": 4}, {"O0": 0, "O3": 1})
        b = ArmResult("fp64", 3, ("O0", "O3"), {"O0": 7, "O3": 7}, {"O0": 0, "O3": 0})
        a.merge(b)
        assert a.n_programs == 5
        assert a.runs_by_opt == {"O0": 12, "O3": 11}
        assert a.skipped_by_opt == {"O0": 0, "O3": 1}
        assert a.total_runs == 2 * (12 + 11)

    def test_paper_scale_config_numbers(self):
        cfg = CampaignConfig.paper_scale()
        assert cfg.n_programs_fp64 == 3540
        assert cfg.n_programs_fp32 == 2840
        # Paper: 652,600 runs with 6.99 (FP64) / 5.55 (FP32) inputs per
        # program; our uniform 7 inputs gives 694,400 — within ~7%.
        total = 2 * (2 * 3540 + 2840) * cfg.inputs_per_program * 5
        assert total == 694400
        assert abs(total - 652600) / 652600 < 0.07


# --------------------------------------------------------- campaign engine
class _TrapAtOpt:
    """Wraps a device: raises TrapError for one program at one opt label."""

    def __init__(self, inner, opt_label: str, id_suffix: str = "-000000") -> None:
        self._inner = inner
        self._opt_label = opt_label
        self._id_suffix = id_suffix

    def execute(self, compiled, inputs, *, trace: bool = False):
        if compiled.opt.label == self._opt_label and compiled.program_id.endswith(
            self._id_suffix
        ):
            raise TrapError("synthetic step-budget trap")
        return self._inner.execute(compiled, inputs, trace=trace)


def _trapping_runner_factory(opt_label: str):
    def factory(*args, **kwargs):
        runner = DifferentialRunner(*args, **kwargs)
        runner.nvidia = _TrapAtOpt(runner.nvidia, opt_label)
        return runner

    return factory


def _disc_keys(arm):
    return sorted(
        (d.test_id, d.input_index, d.opt_label, d.dclass.value)
        for d in arm.discrepancies
    )


class TestCampaignEngine:
    def test_per_opt_accounting_with_uneven_traps(self, monkeypatch):
        """Regression for the runs_counted latch: a program that traps at
        -O3 -ffast-math but not -O0 must shrink only O3_FM's run total."""
        import repro.harness.runner as runner_mod

        # The execution service builds its runners from repro.harness.runner
        # (RunnerSpec.build), so that is where the trap wrapper hooks in.
        monkeypatch.setattr(
            runner_mod, "DifferentialRunner", _trapping_runner_factory("O3_FM")
        )
        config = CampaignConfig(
            seed=3, n_programs_fp64=6, inputs_per_program=2,
            include_hipify=False, include_fp32=False,
        )
        arm = run_campaign(config).arms["fp64"]
        assert arm.runs_by_opt["O0"] == 12
        assert arm.runs_by_opt["O3_FM"] == 10
        assert arm.skipped_by_opt["O3_FM"] == 2 and arm.n_skipped_tests == 2
        assert arm.total_runs == 2 * (4 * 12 + 10)
        # The seed engine extrapolated the first setting across the grid;
        # the true total differs from that estimate.
        assert arm.total_runs != arm.runs_per_option * len(arm.opt_labels)

    def test_trap_outcomes_replay_identically_across_arms(self, monkeypatch):
        """Cached nvcc traps skip the same inputs in the hipify arm."""
        import repro.harness.runner as runner_mod

        monkeypatch.setattr(
            runner_mod, "DifferentialRunner", _trapping_runner_factory("O3_FM")
        )
        config = CampaignConfig(
            seed=3, n_programs_fp64=6, inputs_per_program=2, include_fp32=False
        )
        result = run_campaign(config)
        fp64, hip = result.arms["fp64"], result.arms["fp64_hipify"]
        assert hip.nvcc_executions == 0
        assert hip.runs_by_opt == fp64.runs_by_opt
        assert hip.skipped_by_opt == fp64.skipped_by_opt

    def test_reuse_matches_standalone(self):
        """Cached fp64_hipify equals a from-scratch (seed-style) run while
        executing the nvcc side zero times."""
        base = CampaignConfig(
            seed=5, n_programs_fp64=10, n_programs_fp32=6, inputs_per_program=2
        )
        cached = run_campaign(base)
        scratch = run_campaign(replace(base, reuse_nvcc_runs=False))
        for name in cached.arms:
            assert _disc_keys(cached.arms[name]) == _disc_keys(scratch.arms[name])
            assert cached.arms[name].runs_by_opt == scratch.arms[name].runs_by_opt
        n_inputs = 10 * 2 * len(base.opts)
        assert cached.arms["fp64_hipify"].nvcc_executions == 0
        assert cached.arms["fp64_hipify"].nvcc_cache_hits == n_inputs
        assert cached.nvcc_cache_hits == n_inputs
        assert scratch.arms["fp64_hipify"].nvcc_executions == n_inputs
        assert scratch.nvcc_cache_hits == 0

    def test_cached_nvcc_records_equal_from_scratch(self, small_fp64_corpus):
        """The content-keyed store replay hands back records bit-identical
        to what a fresh nvcc execution of the hipified twin would produce."""
        test = small_fp64_corpus.tests[0]
        store = ExecRunStore()
        DifferentialRunner().run_sweep(
            test, PAPER_OPT_SETTINGS, populate_cache=store.view_for(test)
        )
        twin = test.hipified()
        # The twin shares the native test's content id: its view hits.
        via_cache = DifferentialRunner().run_sweep(
            twin, PAPER_OPT_SETTINGS, nvcc_cache=store.view_for(twin)
        )
        from_scratch = DifferentialRunner().run_sweep(twin, PAPER_OPT_SETTINGS)
        # NaN values defeat dataclass equality; the printed %.17g line
        # round-trips every payload bit, so compare records through it.
        rec_key = lambda r: (r.test_id, r.input_index, r.opt_label, r.compiler, r.printed)
        for label, pair in via_cache.items():
            assert list(map(rec_key, pair.nvcc_runs)) == list(
                map(rec_key, from_scratch[label].nvcc_runs)
            )
            assert list(map(rec_key, pair.hipcc_runs)) == list(
                map(rec_key, from_scratch[label].hipcc_runs)
            )
            assert pair.skipped_inputs == from_scratch[label].skipped_inputs

    def test_resume_completes_interrupted_campaign(self, tmp_path):
        config = CampaignConfig(
            seed=7, n_programs_fp64=8, n_programs_fp32=4, inputs_per_program=2
        )
        ck = tmp_path / "campaign.jsonl"
        full = run_campaign(config, checkpoint=ck)
        lines = ck.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) > 2  # header + several steps
        # Deliberately interrupt: keep the header and the first step only.
        ck.write_text("\n".join(lines[:2]) + "\n", encoding="utf-8")
        resumed = run_campaign(config, checkpoint=ck, resume=True)
        assert resumed.resumed_steps == 1
        for name in full.arms:
            assert resumed.arms[name].total_runs == full.arms[name].total_runs
            assert resumed.arms[name].runs_by_opt == full.arms[name].runs_by_opt
            assert _disc_keys(resumed.arms[name]) == _disc_keys(full.arms[name])
        # A second resume finds every step done and executes nothing new.
        again = run_campaign(config, checkpoint=ck, resume=True)
        assert again.resumed_steps == len(lines) - 1  # every step reloaded
        assert again.total_runs == full.total_runs

    def test_resume_requires_matching_config(self, tmp_path):
        config = CampaignConfig(
            seed=7, n_programs_fp64=4, inputs_per_program=2,
            include_hipify=False, include_fp32=False,
        )
        ck = tmp_path / "campaign.jsonl"
        run_campaign(config, checkpoint=ck)
        with pytest.raises(HarnessError):
            run_campaign(replace(config, seed=8), checkpoint=ck, resume=True)

    def test_resume_without_checkpoint_rejected(self):
        with pytest.raises(HarnessError):
            run_campaign(CampaignConfig.tiny(), resume=True)

    def test_pair_discrepancies_mismatch_raises(self):
        nv = [_record(1.0)]
        with pytest.raises(HarnessError):
            pair_discrepancies(nv, [])
        misindexed = [RunRecord("t", 1, "O0", "hipcc", "1.0", 1.0)]
        with pytest.raises(HarnessError):
            pair_discrepancies(nv, misindexed)
        # Duplicates on either side are rejected, not silently collapsed.
        hip0 = _record(1.0, "hipcc")
        hip1 = RunRecord("t", 1, "O0", "hipcc", "1.0", 1.0)
        with pytest.raises(HarnessError):
            pair_discrepancies([_record(1.0), _record(2.0)], [hip0, hip1])
        with pytest.raises(HarnessError):
            pair_discrepancies(nv * 2, [hip0, hip0])

    def test_zero_program_arm_reports_empty_result(self):
        config = CampaignConfig(
            seed=5, n_programs_fp64=4, n_programs_fp32=0, inputs_per_program=2,
            include_hipify=False,
        )
        result = run_campaign(config)
        assert set(result.arms) == {"fp64", "fp32"}
        fp32 = result.arms["fp32"]
        assert fp32.n_programs == 0 and fp32.total_runs == 0
        assert fp32.discrepancy_percent == 0.0

    def test_resume_tolerates_torn_checkpoint_tail(self, tmp_path):
        config = CampaignConfig(
            seed=7, n_programs_fp64=8, inputs_per_program=2,
            include_hipify=False, include_fp32=False,
        )
        ck = tmp_path / "campaign.jsonl"
        full = run_campaign(config, checkpoint=ck)
        lines = ck.read_text(encoding="utf-8").strip().splitlines()
        # A run killed mid-write leaves a half line with no newline.
        ck.write_text("\n".join(lines[:2]) + '\n{"kind": "step", "key', encoding="utf-8")
        resumed = run_campaign(config, checkpoint=ck, resume=True)
        assert resumed.total_runs == full.total_runs
        # The torn fragment was trimmed: the file parses clean end to end,
        # so the *next* resume reloads every step.
        again = run_campaign(config, checkpoint=ck, resume=True)
        assert again.resumed_steps == len(lines) - 1
        assert again.total_runs == full.total_runs

    def test_resume_auto_falls_back_on_mismatch(self, tmp_path):
        config = CampaignConfig(
            seed=7, n_programs_fp64=4, inputs_per_program=2,
            include_hipify=False, include_fp32=False,
        )
        ck = tmp_path / "campaign.jsonl"
        run_campaign(config, checkpoint=ck)
        other = replace(config, seed=8)
        # strict resume refuses, auto starts fresh and rewrites the header
        with pytest.raises(HarnessError):
            run_campaign(other, checkpoint=ck, resume=True)
        result = run_campaign(other, checkpoint=ck, resume="auto")
        assert result.resumed_steps == 0 and result.total_runs > 0
        # ...and the refreshed checkpoint now resumes under the new config.
        again = run_campaign(other, checkpoint=ck, resume="auto")
        assert again.resumed_steps > 0 and again.total_runs == result.total_runs

    def test_generator_config_validates(self):
        with pytest.raises(GrammarError):
            CampaignConfig(inputs_per_program=0).generator_config(FPType.FP64)
        gen = CampaignConfig(inputs_per_program=4).generator_config(FPType.FP32)
        assert gen.inputs_per_program == 4 and gen.fptype is FPType.FP32


# ---------------------------------------------------------------- metadata
class TestMetadata:
    def test_runstore_roundtrip(self):
        store = RunStore()
        store.record_printed("O0", "prog-1", 0, "1.5")
        store.record_printed("O3_FM", "prog-2", 3, "-nan")
        rebuilt = RunStore.from_json_dict(store.to_json_dict())
        assert rebuilt.get("O0", "prog-1", 0) == "1.5"
        assert rebuilt.get("O3_FM", "prog-2", 3) == "-nan"
        assert len(rebuilt) == 2

    def test_runstore_bad_key_rejected(self):
        with pytest.raises(MetadataError):
            RunStore.from_json_dict({"no-separators": "1.0"})

    def test_metadata_save_load(self, tmp_path):
        cfg = GeneratorConfig.fp64(inputs_per_program=2)
        corpus = build_corpus(cfg, 4, root_seed=77)
        meta = CampaignMetadata.from_corpus(corpus, ["O0", "O1"])
        meta.register_system("sys", compiler="nvcc", device="v100", flags=["-O0"])
        meta.store_for("sys").record_printed("O0", corpus.tests[0].test_id, 0, "3.25")
        path = tmp_path / "meta.json"
        meta.save(path)
        loaded = CampaignMetadata.load(path)
        assert loaded.fptype is FPType.FP64
        assert loaded.opt_labels == ("O0", "O1")
        assert loaded.store_for("sys").get("O0", corpus.tests[0].test_id, 0) == "3.25"

    def test_rebuild_tests_bit_identical(self, tmp_path):
        cfg = GeneratorConfig.fp64(inputs_per_program=2)
        corpus = build_corpus(cfg, 5, root_seed=31)
        meta = CampaignMetadata.from_corpus(corpus, ["O0"])
        meta.save(tmp_path / "m.json")
        rebuilt = CampaignMetadata.load(tmp_path / "m.json").rebuild_tests()
        for orig, new in zip(corpus, rebuilt):
            assert new.program.kernel == orig.program.kernel
            assert new.inputs == orig.inputs

    def test_unknown_system_rejected(self):
        cfg = GeneratorConfig.fp64(inputs_per_program=1)
        meta = CampaignMetadata.from_corpus(build_corpus(cfg, 1, 1), ["O0"])
        with pytest.raises(MetadataError):
            meta.store_for("ghost")


# ---------------------------------------------------------------- transfer
class TestBetweenPlatform:
    @pytest.fixture(scope="class")
    def corpus(self):
        cfg = GeneratorConfig.fp64(inputs_per_program=2)
        return build_corpus(cfg, 10, root_seed=2024)

    def test_full_round_trip(self, corpus, tmp_path):
        meta, discrepancies = between_platform_campaign(
            corpus, tmp_path, opts=[OptSetting(OptLevel.O0), OptSetting(OptLevel.O3)]
        )
        assert (tmp_path / "metadata.system1.json").exists()
        assert (tmp_path / "metadata.merged.json").exists()
        assert SYSTEM1 in meta.systems and SYSTEM2 in meta.systems
        # both systems produced a result for every (opt, test, input)
        assert len(meta.store_for(SYSTEM1)) == len(meta.store_for(SYSTEM2))

    def test_matches_in_process_runner(self, corpus, tmp_path, runner):
        """The Fig. 3 file workflow finds exactly the discrepancies the
        in-process differential runner finds."""
        opts = [OptSetting(OptLevel.O0)]
        _, via_files = between_platform_campaign(corpus, tmp_path, opts=opts)
        direct = []
        for t in corpus:
            direct.extend(runner.run_pair(t, opts[0]).discrepancies)
        key = lambda d: (d.test_id, d.input_index, d.opt_label, d.dclass.value)
        assert sorted(map(key, via_files)) == sorted(map(key, direct))

    def test_grid_mismatch_rejected(self, corpus, tmp_path):
        run_system1(corpus, tmp_path / "m1.json", opts=[OptSetting(OptLevel.O0)])
        with pytest.raises(MetadataError):
            run_system2(
                tmp_path / "m1.json",
                tmp_path / "m2.json",
                opts=[OptSetting(OptLevel.O3)],
            )

    def test_collect_requires_both_systems(self, corpus, tmp_path):
        meta = run_system1(corpus, tmp_path / "solo.json", opts=[OptSetting(OptLevel.O0)])
        with pytest.raises(MetadataError):
            collect_discrepancies(meta)
