"""Smoke tests: every shipped example runs to completion.

Each example is executed in-process (imported as __main__-style) with a
trimmed workload where the script supports arguments, so the suite stays
fast while still guaranteeing the examples never rot.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv: list) -> None:
    old_argv = sys.argv
    sys.argv = [script] + argv
    try:
        with pytest.raises(SystemExit) as exc:
            runpy.run_path(str(EXAMPLES / script), run_name="__main__")
        assert exc.value.code in (0, None)
    finally:
        sys.argv = old_argv


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        _run("quickstart.py", ["5"])
        out = capsys.readouterr().out
        assert "Table IV" in out

    def test_fuzzing_session(self, capsys):
        _run("fuzzing_session.py", ["12", "11"])
        out = capsys.readouterr().out
        assert "novel findings" in out
        assert "fuzzing vs blind generation" in out

    def test_acceptance_testing(self, tmp_path, capsys):
        _run("acceptance_testing.py", [str(tmp_path)])
        out = capsys.readouterr().out
        assert "Acceptance-testing report" in out
        assert (tmp_path / "metadata.merged.json").exists()

    def test_porting_audit(self, capsys):
        _run("porting_audit.py", ["25"])
        out = capsys.readouterr().out
        assert "porting audit" in out

    def test_case_study_explorer(self, capsys):
        _run("case_study_explorer.py", [])
        out = capsys.readouterr().out
        assert "Case Study 1" in out and "Case Study 2" in out
        assert "1.34887e-306" in out  # the bit-exact Fig. 5 output

    def test_application_kernels(self, capsys):
        _run("application_kernels.py", [])
        out = capsys.readouterr().out
        assert "runtime/accuracy tradeoff" in out
