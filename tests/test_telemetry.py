"""Telemetry subsystem: spans, metrics, export, report, and the
out-of-band contract.

The load-bearing guarantee is the last class: campaign checkpoints and
fuzz/oracle ledgers must be byte-identical with tracing on or off at any
worker count.  Telemetry that changed an artifact would silently fork
every determinism claim the repo makes, so the invariance tests run the
real CLIs with ``--trace-out`` against untraced serial baselines.
"""

from __future__ import annotations

import importlib.util
import json
import time
from pathlib import Path

import pytest

from repro.telemetry.export import (
    chrome_trace,
    fold_exec_metrics,
    fold_spans,
    write_metrics_snapshot,
    write_span_jsonl,
    write_trace,
)
from repro.telemetry.metrics import DEFAULT_TIME_EDGES, MetricsRegistry
from repro.telemetry.report import main as report_main
from repro.telemetry.spans import (
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
)

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


# ------------------------------------------------------------- tracer core
class TestTracer:
    def test_null_tracer_is_the_default(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert tracer.enabled is False
        # The disabled span is a shared singleton no-op context manager:
        # the hot path pays one attribute lookup and nothing else.
        a = tracer.span("compile", stack="nvcc")
        b = tracer.span("exec.chunk")
        assert a is b
        with a:
            pass
        assert tracer.records() == [] and tracer.drain() == []

    def test_set_tracer_returns_previous_and_none_restores_null(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer().enabled is False
        # Explicit None also lands back on the shared null tracer.
        before = set_tracer(None)
        assert get_tracer().enabled is False
        set_tracer(before)

    def test_span_nesting_and_attribution(self):
        tracer = Tracer()
        with tracer.span("outer", stack="nvcc"):
            with tracer.span("inner", opt="O3"):
                time.sleep(0.002)
        records = tracer.records()
        # Inner exits (and records) first, but both carry their depth.
        by_name = {r.name: r for r in records}
        assert set(by_name) == {"outer", "inner"}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner"].dur_ns <= by_name["outer"].dur_ns
        assert by_name["outer"].args == (("stack", "nvcc"),)
        assert by_name["inner"].args == (("opt", "O3"),)
        assert by_name["inner"].dur_ns >= 2_000_000  # the sleep
        totals = tracer.totals_by_name()
        assert totals["inner"] <= totals["outer"]

    def test_merge_orders_by_chunk_not_arrival(self):
        """Worker batches merged out of order still export in
        submission order — the worker-count-invariance mechanism."""

        def batch(tag):
            local = Tracer()
            local.record(f"{tag}.a", 100, 200)
            local.record(f"{tag}.b", 200, 300)
            return local.drain()

        tracer = Tracer()
        tracer.record("parent", 0, 50)
        # Chunk 2 "arrives" before chunk 0.
        tracer.merge(2, batch("late"))
        tracer.merge(0, batch("early"))
        names = [r.name for r in tracer.records()]
        assert names == ["parent", "early.a", "early.b", "late.a", "late.b"]
        chunks = [r.chunk for r in tracer.records()]
        assert chunks == [-1, 0, 0, 2, 2]

    def test_drain_clears_and_ships(self):
        tracer = Tracer()
        tracer.record("x", 0, 10)
        shipped = tracer.drain()
        assert [r.name for r in shipped] == ["x"]
        assert tracer.records() == []

    def test_max_records_drops_instead_of_growing(self):
        tracer = Tracer(max_records=2)
        for i in range(5):
            tracer.record(f"s{i}", 0, 1)
        assert len(tracer.records()) == 2
        assert tracer.dropped == 3

    def test_seconds_by_chunk_skips_parent_spans(self):
        tracer = Tracer()
        tracer.record("exec.chunk", 0, 1_000_000_000)  # parent, chunk=-1
        tracer.record("exec.chunk", 0, 500_000_000, chunk=3)
        assert tracer.seconds_by_chunk() == {3: 0.5}


# ------------------------------------------------------------------ metrics
class TestMetrics:
    def test_histogram_buckets_are_deterministic(self):
        values = [1e-7, 1e-6, 3e-5, 0.004, 0.26, 17.0, 1e6]

        def build():
            reg = MetricsRegistry()
            hist = reg.histogram("lat")
            for v in values:
                hist.observe(v)
            reg.counter("n").inc(len(values))
            reg.gauge("g").set(3.5)
            return reg.snapshot()

        a, b = build(), build()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        hist = a["histograms"]["lat"]
        assert tuple(hist["edges"]) == DEFAULT_TIME_EDGES
        assert len(hist["counts"]) == len(DEFAULT_TIME_EDGES) + 1
        assert sum(hist["counts"]) == hist["count"] == len(values)
        assert hist["sum"] == pytest.approx(sum(values))
        # 1e-7 is below the first edge; 1e6 is past the last.
        assert hist["counts"][0] >= 1
        assert hist["counts"][-1] >= 1

    def test_counters_accumulate_and_snapshot_sorts(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2.0)
        reg.counter("a").inc()
        reg.counter("b").inc(0.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"]["b"] == pytest.approx(2.5)

    def test_fold_exec_metrics_names_phases(self):
        reg = MetricsRegistry()
        fold_exec_metrics(
            reg,
            {
                "requests": 10,
                "phase_seconds": {"lookup": 0.5, "execute": 2.0, "commit": 0.25},
                "store": {"hits": 3},  # non-scalar: ignored
            },
        )
        counters = reg.snapshot()["counters"]
        assert counters["phase.lookup_seconds"] == pytest.approx(0.5)
        assert counters["phase.execute_seconds"] == pytest.approx(2.0)
        assert counters["phase.commit_seconds"] == pytest.approx(0.25)
        assert counters["exec.requests"] == pytest.approx(10.0)
        assert "exec.store" not in counters


# ------------------------------------------------------------------- export
class TestExport:
    def _records(self):
        tracer = Tracer()
        tracer.record("exec.chunk", 2_000_000, 5_000_000, chunk=0, requests=2)
        tracer.record("compile", 2_500_000, 3_000_000, chunk=0, compiler="nvcc")
        return tracer.records()

    def test_chrome_trace_schema(self):
        trace = chrome_trace(self._records())
        events = trace["traceEvents"]
        assert isinstance(events, list) and len(events) == 2
        for ev in events:
            assert ev["ph"] == "X"
            assert isinstance(ev["name"], str)
            assert isinstance(ev["ts"], float) and ev["ts"] >= 0.0
            assert isinstance(ev["dur"], float) and ev["dur"] >= 0.0
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            assert ev["args"]["chunk"] == 0
        # Timestamps are normalized to the earliest span (microseconds).
        assert min(ev["ts"] for ev in events) == 0.0
        assert events[0]["args"]["requests"] == 2

    def test_write_trace_dispatches_on_suffix(self, tmp_path):
        records = self._records()
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        write_trace(records, jsonl)
        write_trace(records, chrome)
        lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
        assert [l["name"] for l in lines] == ["exec.chunk", "compile"]
        assert "traceEvents" in json.loads(chrome.read_text())

    def test_span_jsonl_round_trips_args(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_span_jsonl(self._records(), path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["args"] == {"requests": 2}
        assert first["chunk"] == 0

    def test_fold_spans_builds_chunk_histogram(self):
        reg = MetricsRegistry()
        fold_spans(reg, self._records())
        snap = reg.snapshot()
        assert snap["counters"]["span.exec.chunk_seconds"] == pytest.approx(0.003)
        assert snap["histograms"]["span.exec.chunk_seconds"]["count"] == 1


# ------------------------------------------------------------------- report
class TestReport:
    def _snapshot(self, tmp_path, name, extra=0.0):
        reg = MetricsRegistry()
        reg.counter("phase.execute_seconds").inc(1.0 + extra)
        reg.counter("span.exec.chunk_seconds").inc(2.0)
        reg.gauge("workers").set(2)
        reg.histogram("lat").observe(0.01)
        path = tmp_path / name
        write_metrics_snapshot(reg.snapshot(), path)
        return path

    def test_render(self, tmp_path, capsys):
        path = self._snapshot(tmp_path, "snap.json")
        assert report_main(["render", str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase.execute_seconds" in out
        assert "workers" in out

    def test_diff_shows_deltas(self, tmp_path, capsys):
        old = self._snapshot(tmp_path, "old.json")
        new = self._snapshot(tmp_path, "new.json", extra=0.5)
        assert report_main(["diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "phase.execute_seconds" in out

    def test_diff_identical_snapshots(self, tmp_path, capsys):
        old = self._snapshot(tmp_path, "old.json")
        new = self._snapshot(tmp_path, "new.json")
        assert report_main(["diff", str(old), str(new)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_bad_input_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert report_main(["render", str(missing)]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]\n")
        assert report_main(["render", str(bad)]) == 2
        capsys.readouterr()


# ------------------------------------------- out-of-band byte identity
class TestOutOfBandContract:
    """Tracing must never change an artifact: checkpoints, ledgers and
    fingerprints are byte-identical with ``--trace-out`` at workers
    0/2/4 vs an untraced serial baseline."""

    def test_campaign_checkpoint_byte_identical(self, tmp_path):
        """Checkpoint line order is legitimately scheduling-dependent
        (resume keys steps, not lines), so the contract is: at each
        worker count, tracing changes nothing; across worker counts,
        the *content* (sorted lines) is identical."""
        from repro.cli import main

        def run(tag, workers, traced):
            ckpt = tmp_path / f"ckpt-{tag}.jsonl"
            argv = [
                "--seed", "2024", "--fp64-programs", "8", "--no-fp32",
                "--inputs", "2", "--workers", str(workers),
                "--checkpoint", str(ckpt),
            ]
            if traced:
                argv += ["--trace-out", str(tmp_path / f"trace-{tag}.json")]
            assert main(argv) == 0
            return ckpt.read_bytes()

        baseline = run("serial", 0, traced=False)
        assert baseline  # the run actually checkpointed something
        # Serial scheduling is fully deterministic: tracing must not
        # move a byte.
        assert run("on-w0", 0, traced=True) == baseline
        # Pooled runs may interleave completions differently between any
        # two runs (traced or not), so compare content, not line order.
        for workers in (2, 4):
            traced = run(f"on-w{workers}", workers, traced=True)
            assert sorted(traced.splitlines()) == sorted(baseline.splitlines()), workers

    def test_fuzz_ledger_byte_identical(self, tmp_path):
        from repro.fuzz.cli import main

        def run(tag, workers, traced):
            ledger = tmp_path / f"fuzz-{tag}.jsonl"
            argv = [
                "--seed", "11", "--seed-programs", "6", "--inputs", "2",
                "--mutants", "10", "--batch", "5", "--no-minimize",
                "--workers", str(workers), "--ledger", str(ledger),
            ]
            if traced:
                argv += ["--trace-out", str(tmp_path / f"trace-{tag}.jsonl")]
            assert main(argv) == 0
            return ledger.read_bytes()

        baseline = run("base", 0, traced=False)
        assert baseline
        for workers in (0, 2, 4):
            assert run(f"w{workers}", workers, traced=True) == baseline, workers

    def test_oracle_ledger_byte_identical(self, tmp_path):
        from repro.oracle.cli import main

        def run(tag, workers, traced):
            ledger = tmp_path / f"oracle-{tag}.jsonl"
            argv = [
                "--seed", "11", "--programs", "6", "--inputs", "2",
                "--workers", str(workers), "--ledger", str(ledger),
            ]
            if traced:
                argv += ["--trace-out", str(tmp_path / f"trace-{tag}.json")]
            assert main(argv) == 0
            return ledger.read_bytes()

        baseline = run("base", 0, traced=False)
        assert baseline
        for workers in (0, 2, 4):
            assert run(f"w{workers}", workers, traced=True) == baseline, workers

    def test_trace_out_writes_a_loadable_chrome_trace(self, tmp_path):
        from repro.cli import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "--seed", "7", "--fp64-programs", "8", "--no-fp32",
                    "--inputs", "2", "--workers", "2",
                    "--trace-out", str(trace), "--metrics-out", str(metrics),
                ]
            )
            == 0
        )
        data = json.loads(trace.read_text())
        names = {ev["name"] for ev in data["traceEvents"]}
        # Pool-backend phases and the exec layer both show up; compile
        # spans prove worker-side spans were shipped back and merged.
        assert "exec.chunk" in names
        assert "pool.execute" in names
        assert "compile" in names
        snap = json.loads(metrics.read_text())
        counters = snap["counters"]
        assert counters.get("phase.execute_seconds", 0.0) > 0.0
        assert "span.exec.chunk_seconds" in counters


# ------------------------------------------------- phase-time aggregates
class TestPhaseSeconds:
    def test_campaign_json_exec_block_has_phase_seconds(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "campaign.json"
        assert (
            main(
                [
                    "--seed", "7", "--fp64-programs", "4", "--no-fp32",
                    "--inputs", "2", "--json", str(out),
                ]
            )
            == 0
        )
        phases = json.loads(out.read_text())["exec"]["phase_seconds"]
        assert set(phases) == {"lookup", "execute", "commit"}
        assert all(v >= 0.0 for v in phases.values())
        assert phases["execute"] > 0.0


# ------------------------------------------------- merge_trajectory gate
def _load_merge_trajectory():
    spec = importlib.util.spec_from_file_location(
        "merge_trajectory", BENCH_DIR / "merge_trajectory.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestMergeTrajectoryBaseline:
    """Satellite: a missing or torn baseline warns and passes."""

    def test_non_dict_baseline_is_skipped(self, tmp_path, capsys):
        mod = _load_merge_trajectory()
        baseline = tmp_path / "baseline.json"
        baseline.write_text("[1, 2, 3]\n")
        rc = mod.main(
            [
                "--results-dir", str(tmp_path),
                "--out", str(tmp_path / "trajectory.json"),
                "--baseline", str(baseline),
                "--fail-threshold", "2.0",
            ]
        )
        assert rc == 0
        assert "comparison skipped" in capsys.readouterr().err

    def test_torn_baseline_is_skipped(self, tmp_path, capsys):
        mod = _load_merge_trajectory()
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"meta": {"commit": "abc",')  # torn write
        rc = mod.main(
            [
                "--results-dir", str(tmp_path),
                "--out", str(tmp_path / "trajectory.json"),
                "--baseline", str(baseline),
                "--fail-threshold", "2.0",
            ]
        )
        assert rc == 0
        assert "comparison skipped" in capsys.readouterr().err
        # The merged artifact is still written.
        assert (tmp_path / "trajectory.json").exists()

    def test_phases_fold_and_blame(self, tmp_path, capsys):
        """metrics_snapshot.json seconds become the phases block, and a
        tripped gate names the slowest-growing phase."""
        mod = _load_merge_trajectory()

        def night(dirname, mean, execute_seconds):
            d = tmp_path / dirname
            d.mkdir()
            (d / "bench_fuzz_engine.json").write_text(
                json.dumps(
                    {
                        "benchmarks": [
                            {
                                "name": "test_fuzz",
                                "stats": {
                                    "min": mean, "mean": mean, "max": mean,
                                    "rounds": 3,
                                },
                            }
                        ]
                    }
                )
            )
            (d / "metrics_snapshot.json").write_text(
                json.dumps(
                    {
                        "counters": {
                            "phase.execute_seconds": execute_seconds,
                            "phase.lookup_seconds": 0.1,
                        },
                        "gauges": {},
                        "histograms": {},
                    }
                )
            )
            return d

        base_dir = night("base", mean=1.0, execute_seconds=1.0)
        slow_dir = night("slow", mean=5.0, execute_seconds=4.0)
        base_out = tmp_path / "base.json"
        assert mod.main(
            ["--results-dir", str(base_dir), "--out", str(base_out)]
        ) == 0
        assert json.loads(base_out.read_text())["phases"] == {
            "phase.execute_seconds": 1.0,
            "phase.lookup_seconds": 0.1,
        }
        capsys.readouterr()
        rc = mod.main(
            [
                "--results-dir", str(slow_dir),
                "--out", str(tmp_path / "slow.json"),
                "--baseline", str(base_out),
                "--fail-threshold", "2.0",
            ]
        )
        assert rc == 3
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        assert "phase.execute_seconds at 4.00x" in err
