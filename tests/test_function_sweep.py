"""Tests for the per-function disagreement sweep."""

from __future__ import annotations

import pytest

from repro.analysis.function_sweep import (
    FunctionSweepResult,
    sweep_all,
    sweep_function,
    sweep_table,
)
from repro.devices.mathlib.base import EXACT_FUNCTIONS
from repro.fp.types import FPType


class TestSweep:
    def test_exact_functions_never_disagree(self):
        for func in sorted(EXACT_FUNCTIONS):
            r = sweep_function(func, points_per_range=20)
            assert r.n_disagreements == 0

    def test_fmod_diverges_on_extreme_mixes(self):
        r = sweep_function("fmod", points_per_range=30)
        assert r.n_disagreements > 0

    def test_ceil_class_changes(self):
        r = sweep_function("ceil", points_per_range=30)
        assert r.n_class_changes > 0  # the 0-vs-1 quirk is Zero-vs-Num

    def test_transcendental_rates_sparse(self):
        r = sweep_function("cos", points_per_range=50)
        assert 0.0 < r.disagreement_rate < 0.25
        assert r.max_ulps <= 2

    def test_fp32_sweep_runs(self):
        r = sweep_function("exp", FPType.FP32, points_per_range=20)
        assert r.n_points > 0

    def test_deterministic(self):
        a = sweep_function("sin", points_per_range=25)
        b = sweep_function("sin", points_per_range=25)
        assert a == b

    def test_sweep_all_covers_everything(self):
        results = sweep_all(points_per_range=10)
        from repro.devices.mathlib.base import SUPPORTED_FUNCTIONS

        assert {r.func for r in results} == set(SUPPORTED_FUNCTIONS)

    def test_table_sorted_by_rate(self):
        results = sweep_all(points_per_range=10)
        text = sweep_table(results).render()
        lines = [l for l in text.splitlines() if l and l[0].isalpha() and not l.startswith("Function")]
        # exact functions (0%) render at the bottom
        assert any(lines[-1].startswith(f) for f in ("fabs", "floor", "sqrt", "trunc", "fmin", "fmax"))

    def test_subset_selection(self):
        results = sweep_all(functions=["cos", "fmod"], points_per_range=10)
        assert [r.func for r in results] == ["cos", "fmod"]
