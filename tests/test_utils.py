"""Tests for repro.utils: hashing, RNG derivation, tables, JSON I/O."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.hashing import hash_bytes, hash_floats, splitmix64, stable_hash
from repro.utils.jsonio import decode_float, dump_json, encode_float, load_json
from repro.utils.rng import SeedSequenceFactory, derive_seed
from repro.utils.tables import Table, format_table


# ---------------------------------------------------------------- hashing
class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_different_inputs_differ(self):
        assert splitmix64(1) != splitmix64(2)

    def test_output_is_64_bit(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_avalanche_nonzero(self, x):
        # Flipping the lowest bit changes the output (no fixed low bits).
        assert splitmix64(x) != splitmix64(x ^ 1)


class TestHashBytes:
    def test_empty(self):
        assert hash_bytes(b"") == hash_bytes(b"")

    def test_prefix_no_collision(self):
        assert hash_bytes(b"abc") != hash_bytes(b"abc\x00")

    def test_seed_changes_digest(self):
        assert hash_bytes(b"abc", seed=1) != hash_bytes(b"abc", seed=2)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    @settings(max_examples=50)
    def test_unequal_inputs_rarely_collide(self, a, b):
        if a != b:
            # Not a proof, but any systematic collision would fail fast.
            assert hash_bytes(a) != hash_bytes(b) or len(a) == len(b)


class TestStableHash:
    def test_type_tagging(self):
        assert stable_hash(1) != stable_hash(1.0)
        assert stable_hash(1) != stable_hash("1")

    def test_nan_hashable(self):
        assert stable_hash(math.nan) == stable_hash(math.nan)

    def test_signed_zero_distinct(self):
        assert stable_hash(0.0) != stable_hash(-0.0)

    def test_none_supported(self):
        assert stable_hash(None) == stable_hash(None)

    def test_bool_not_int(self):
        assert stable_hash(True) != stable_hash(1)

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            stable_hash([1, 2])

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")


class TestHashFloats:
    def test_bit_keyed(self):
        assert hash_floats([0.0]) != hash_floats([-0.0])

    def test_length_matters(self):
        assert hash_floats([1.0]) != hash_floats([1.0, 1.0])


# -------------------------------------------------------------------- rng
class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(7, "program", 3) == derive_seed(7, "program", 3)

    def test_path_sensitivity(self):
        assert derive_seed(7, "program", 3) != derive_seed(7, "program", 4)
        assert derive_seed(7, "program", 3) != derive_seed(7, "input", 3)

    def test_root_sensitivity(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")

    def test_factory_streams_independent(self):
        f = SeedSequenceFactory(99)
        r1 = f.py_rng("a")
        r2 = f.py_rng("b")
        assert [r1.random() for _ in range(3)] != [r2.random() for _ in range(3)]

    def test_factory_reproducible(self):
        a = SeedSequenceFactory(5).np_rng("x").integers(0, 1000, 10)
        b = SeedSequenceFactory(5).np_rng("x").integers(0, 1000, 10)
        assert list(a) == list(b)

    def test_factory_rejects_non_int(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory("seed")  # type: ignore[arg-type]

    def test_child_factory(self):
        f = SeedSequenceFactory(5)
        assert f.child("x").root_seed == f.seed_for("x")


# ------------------------------------------------------------------ tables
class TestTables:
    def test_basic_render(self):
        t = Table(title="demo", headers=["a", "bb"])
        t.add_row([1, 2.5])
        text = t.render()
        assert "demo" in text and "a" in text and "2.50" in text

    def test_row_arity_checked(self):
        t = Table(title="x", headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_footer_rendered_after_rule(self):
        t = Table(title="x", headers=["a"])
        t.add_row([1])
        t.add_footer(["Total"])
        lines = t.render().splitlines()
        assert lines[-1].startswith("Total")
        assert set(lines[-2]) == {"-"}

    def test_format_table_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table("t", ["a", "b"], [[1]])

    def test_alignment(self):
        t = Table(title="", headers=["name", "n"])
        t.add_row(["long-name-here", 1])
        t.add_row(["x", 22])
        lines = t.render().splitlines()
        # Columns align: the 'n' column starts at the same offset.
        assert lines[-1].index("22") == lines[-2].index("1")


# ------------------------------------------------------------------- json
class TestFloatEncoding:
    @pytest.mark.parametrize(
        "value",
        [0.0, -0.0, 1.5, -1e308, 5e-324, math.inf, -math.inf],
    )
    def test_roundtrip(self, value):
        decoded = decode_float(encode_float(value))
        assert decoded == value or (decoded == 0.0 and value == 0.0)
        assert math.copysign(1.0, decoded) == math.copysign(1.0, value)

    def test_nan_roundtrip(self):
        assert math.isnan(decode_float(encode_float(math.nan)))

    def test_negative_nan_sign_preserved(self):
        decoded = decode_float(encode_float(-math.nan))
        assert math.isnan(decoded) and math.copysign(1.0, decoded) < 0

    def test_nonfinite_encoded_as_strings(self):
        assert isinstance(encode_float(math.inf), str)
        assert isinstance(encode_float(math.nan), str)

    @given(st.floats(allow_nan=False))
    @settings(max_examples=200)
    def test_any_float_roundtrips(self, x):
        assert decode_float(encode_float(x)) == x


class TestJsonFiles:
    def test_dump_load_roundtrip(self, tmp_path):
        payload = {"a": [1, 2, 3], "b": {"c": "text"}, "f": encode_float(math.inf)}
        path = tmp_path / "sub" / "data.json"
        dump_json(payload, path)  # creates parent dirs
        assert load_json(path) == payload

    def test_numpy_scalars_serialized(self, tmp_path):
        import numpy as np

        dump_json({"x": np.float64(1.5), "n": np.int64(3)}, tmp_path / "np.json")
        assert load_json(tmp_path / "np.json") == {"x": 1.5, "n": 3}

    def test_nan_rejected_as_raw_literal(self, tmp_path):
        # dump_json uses allow_nan=False: raw NaN floats must be encoded.
        with pytest.raises(ValueError):
            dump_json({"x": math.nan}, tmp_path / "bad.json")
