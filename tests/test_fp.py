"""Tests for the floating-point substrate (repro.fp)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bits import (
    bits_to_float,
    bits_to_float16,
    bits_to_float32,
    compose_float,
    float16_to_bits,
    float32_to_bits,
    float_to_bits,
    is_negative,
    sign_exponent_mantissa,
)
from repro.fp.classify import (
    OutcomeClass,
    classify_value,
    is_subnormal,
    outcomes_equivalent,
)
from repro.fp.env import FlushMode, FPEnv, FPExceptionFlags
from repro.fp.literals import VARITY_LITERAL_RE, format_varity_literal, parse_varity_literal
from repro.fp.types import FPType
from repro.fp.ulp import nextafter_n, perturb_ulps, ulp_distance, ulp_of

finite_doubles = st.floats(allow_nan=False, allow_infinity=False)


# ------------------------------------------------------------------- types
class TestFPType:
    def test_dtype_mapping(self):
        assert FPType.FP32.dtype == np.dtype(np.float32)
        assert FPType.FP64.dtype == np.dtype(np.float64)

    def test_c_names(self):
        assert FPType.FP32.c_name == "float"
        assert FPType.FP64.c_name == "double"

    def test_suffixes(self):
        assert FPType.FP32.literal_suffix == "F"
        assert FPType.FP32.math_suffix == "f"
        assert FPType.FP64.literal_suffix == ""

    def test_mantissa_bits(self):
        assert FPType.FP32.mantissa_bits == 23
        assert FPType.FP64.mantissa_bits == 52

    @pytest.mark.parametrize("alias,expected", [
        ("fp32", FPType.FP32), ("float", FPType.FP32), ("single", FPType.FP32),
        ("fp64", FPType.FP64), ("double", FPType.FP64), ("F64", FPType.FP64),
    ])
    def test_from_string(self, alias, expected):
        assert FPType.from_string(alias) is expected

    def test_from_string_rejects_unknown(self):
        with pytest.raises(ValueError):
            FPType.from_string("quad")

    def test_extremes(self):
        assert FPType.FP64.smallest_subnormal == 5e-324
        assert FPType.FP64.max == pytest.approx(1.7976931348623157e308)
        assert FPType.FP32.smallest_normal == pytest.approx(1.1754944e-38)


class TestFP16Type:
    def test_dtype_and_fields(self):
        assert FPType.FP16.dtype == np.dtype(np.float16)
        assert FPType.FP16.bits == 16
        assert FPType.FP16.mantissa_bits == 10
        assert FPType.FP16.exponent_bits == 5

    def test_c_names_per_dialect(self):
        assert FPType.FP16.c_name == "__half"  # CUDA default
        assert FPType.FP16.c_name_for("cuda") == "__half"
        assert FPType.FP16.c_name_for("hip") == "_Float16"
        assert FPType.FP16.c_name_for("c") == "_Float16"
        assert FPType.FP64.c_name_for("hip") == "double"

    def test_unknown_dialect_rejected(self):
        with pytest.raises(ValueError):
            FPType.FP16.c_name_for("fortran")

    def test_suffixes(self):
        assert FPType.FP16.literal_suffix == "F16"
        assert FPType.FP16.math_suffix == "h"

    def test_extremes(self):
        assert FPType.FP16.max == 65504.0
        assert FPType.FP16.smallest_normal == pytest.approx(6.103515625e-05)
        assert FPType.FP16.smallest_subnormal == pytest.approx(5.9604644775390625e-08)

    @pytest.mark.parametrize("alias", ["fp16", "half", "F16"])
    def test_from_string(self, alias):
        assert FPType.from_string(alias) is FPType.FP16

    def test_every_member_dispatches(self):
        """The exhaustive-dispatch guarantee: every enum member resolves
        every table-backed property (a new member missing from a table
        raises ValueError instead of silently acting like FP64)."""
        for member in FPType:
            member.dtype
            member.c_name
            member.literal_suffix
            member.math_suffix
            member.bits
            member.mantissa_bits
            member.exponent_bits
            for dialect in ("cuda", "hip", "c"):
                member.c_name_for(dialect)


# -------------------------------------------------------------------- bits
class TestBits:
    @given(finite_doubles)
    def test_float64_roundtrip(self, x):
        assert bits_to_float(float_to_bits(x)) == x

    def test_known_patterns(self):
        assert float_to_bits(0.0) == 0
        assert float_to_bits(-0.0) == 1 << 63
        assert float_to_bits(1.0) == 0x3FF0000000000000

    def test_float32_roundtrip(self):
        for x in (0.0, 1.5, -2.25, 3.4e38):
            assert float(bits_to_float32(float32_to_bits(x))) == float(np.float32(x))

    def test_is_negative_on_zeros_and_nans(self):
        assert is_negative(-0.0) and not is_negative(0.0)
        assert is_negative(float.fromhex("-nan") if False else -math.nan)
        assert not is_negative(math.nan)

    def test_field_split_roundtrip(self):
        for x in (1.0, -2.5, 5e-324, 1e308):
            s, e, m = sign_exponent_mantissa(x)
            assert compose_float(s, e, m) == x

    def test_field_split_fp32(self):
        s, e, m = sign_exponent_mantissa(-1.0, bits=32)
        assert (s, e, m) == (1, 127, 0)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            sign_exponent_mantissa(1.0, bits=8)

    def test_float16_roundtrip(self):
        for x in (0.0, 1.5, -2.25, 65504.0, 6e-8):
            assert float(bits_to_float16(float16_to_bits(x))) == float(np.float16(x))

    def test_float16_known_patterns(self):
        assert float16_to_bits(0.0) == 0
        assert float16_to_bits(-0.0) == 1 << 15
        assert float16_to_bits(1.0) == 0x3C00

    def test_field_split_fp16(self):
        s, e, m = sign_exponent_mantissa(-1.0, bits=16)
        assert (s, e, m) == (1, 15, 0)
        assert compose_float(s, e, m, bits=16) == -1.0


# --------------------------------------------------------------------- ulp
class TestUlp:
    def test_adjacent_distance_one(self):
        x = 1.0
        y = float(np.nextafter(x, 2.0))
        assert ulp_distance(x, y) == 1

    def test_symmetric(self):
        assert ulp_distance(1.0, 2.0) == ulp_distance(2.0, 1.0)

    def test_zero_crossing(self):
        # -0.0 and +0.0 coincide on the ordered line (numerically equal).
        assert ulp_distance(-0.0, 0.0) == 0
        # ...but the smallest negative and positive subnormals are 2 apart.
        assert ulp_distance(-5e-324, 5e-324) == 2

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ulp_distance(math.nan, 1.0)

    def test_fp32_distance(self):
        x = np.float32(1.0)
        y = np.nextafter(x, np.float32(2.0))
        assert ulp_distance(float(x), float(y), FPType.FP32) == 1

    def test_fp16_distance(self):
        x = np.float16(1.0)
        y = np.nextafter(x, np.float16(2.0), dtype=np.float16)
        assert ulp_distance(float(x), float(y), FPType.FP16) == 1

    def test_distance_is_precision_aware(self):
        """One binary16 ULP spans many binary32/binary64 ULPs: the same
        value pair measures differently on each precision's ordered line
        (the classification must never assume a 52/23-bit mantissa)."""
        a, b = 1.0, 1.0009765625  # adjacent in binary16 (1 + 2^-10)
        assert ulp_distance(a, b, FPType.FP16) == 1
        assert ulp_distance(a, b, FPType.FP32) == 2**13
        assert ulp_distance(a, b, FPType.FP64) == 2**42

    def test_fp16_perturb_and_ulp_of(self):
        assert float(perturb_ulps(1.0, 1, FPType.FP16)) == 1.0009765625
        assert ulp_of(1.0, FPType.FP16) == pytest.approx(2.0**-10)
        # Perturbing past HALF_MAX saturates at Inf like the larger lanes.
        assert float(nextafter_n(65504.0, 2, FPType.FP16)) == math.inf

    @given(finite_doubles, st.integers(min_value=-4, max_value=4))
    @settings(max_examples=200)
    def test_nextafter_roundtrip(self, x, n):
        stepped = float(nextafter_n(x, n))
        if not math.isinf(stepped):
            back = float(nextafter_n(stepped, -n))
            if not math.isinf(back):
                assert ulp_distance(back, x) == 0

    def test_nextafter_saturates_at_inf(self):
        assert float(nextafter_n(1.7976931348623157e308, 2)) == math.inf

    def test_perturb_passes_nonfinite_through(self):
        assert math.isnan(perturb_ulps(math.nan, 3))
        assert perturb_ulps(math.inf, -1) == math.inf

    def test_perturb_zero_is_subnormal_step(self):
        assert perturb_ulps(0.0, 1) == 5e-324

    def test_ulp_of_one(self):
        assert ulp_of(1.0) == pytest.approx(2.220446049250313e-16)

    def test_ulp_of_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            ulp_of(math.inf)


# ---------------------------------------------------------------- classify
class TestClassify:
    @pytest.mark.parametrize("value,expected", [
        (math.nan, OutcomeClass.NAN),
        (-math.nan, OutcomeClass.NAN),
        (math.inf, OutcomeClass.INF),
        (-math.inf, OutcomeClass.INF),
        (0.0, OutcomeClass.ZERO),
        (-0.0, OutcomeClass.ZERO),
        (1.5, OutcomeClass.NUMBER),
        (5e-324, OutcomeClass.NUMBER),  # subnormals are Numbers (§IV-B)
    ])
    def test_classes(self, value, expected):
        assert classify_value(value) is expected

    def test_from_string(self):
        assert OutcomeClass.from_string("nan") is OutcomeClass.NAN
        assert OutcomeClass.from_string("Number") is OutcomeClass.NUMBER
        with pytest.raises(ValueError):
            OutcomeClass.from_string("weird")

    def test_subnormal_detection_fp64(self):
        assert is_subnormal(1e-310)
        assert not is_subnormal(1e-300)
        assert not is_subnormal(0.0)
        assert not is_subnormal(math.nan)

    def test_subnormal_detection_fp32(self):
        assert is_subnormal(1e-40, FPType.FP32)
        assert not is_subnormal(1e-30, FPType.FP32)

    # -- the paper's exclusion rules (§IV-B) ----------------------------------
    def test_sign_only_differences_excluded(self):
        assert outcomes_equivalent(math.nan, -math.nan)
        assert outcomes_equivalent(math.inf, -math.inf)
        assert outcomes_equivalent(0.0, -0.0)

    def test_cross_class_is_discrepancy(self):
        assert not outcomes_equivalent(math.nan, math.inf)
        assert not outcomes_equivalent(math.inf, 0.0)
        assert not outcomes_equivalent(0.0, 1.0)

    def test_num_num_compares_by_value(self):
        assert outcomes_equivalent(1.5, 1.5)
        assert not outcomes_equivalent(1.5, float(np.nextafter(1.5, 2.0)))

    @given(finite_doubles)
    def test_equivalence_reflexive(self, x):
        assert outcomes_equivalent(x, x)


# --------------------------------------------------------------------- env
class TestFPExceptionFlags:
    def test_events_accumulate(self):
        f = FPExceptionFlags()
        f.raise_event("overflow")
        f.raise_event("overflow")
        assert f.overflow == 2

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            FPExceptionFlags().raise_event("bogus")

    def test_inexact_not_interesting(self):
        f = FPExceptionFlags()
        f.raise_event("inexact")
        assert not f.any_raised()  # §II-B1: Inexact is of no interest

    def test_merge(self):
        a, b = FPExceptionFlags(), FPExceptionFlags()
        a.raise_event("invalid")
        b.raise_event("invalid")
        a.merge(b)
        assert a.invalid == 2

    def test_reset(self):
        f = FPExceptionFlags()
        f.raise_event("underflow")
        f.reset()
        assert f.as_dict() == {k: 0 for k in FPExceptionFlags.EVENTS}


class TestFPEnv:
    def test_no_flush_by_default(self):
        env = FPEnv()
        assert float(env.flush_output(np.float64(1e-310))) == 1e-310

    def test_output_flush(self):
        env = FPEnv(flush=FlushMode.FLUSH_OUTPUTS)
        assert float(env.flush_output(np.float64(1e-310))) == 0.0
        assert env.flags.underflow == 1

    def test_output_flush_preserves_sign(self):
        env = FPEnv(flush=FlushMode.FLUSH_OUTPUTS)
        flushed = float(env.flush_output(np.float64(-1e-310)))
        assert flushed == 0.0 and math.copysign(1.0, flushed) < 0

    def test_input_flush_only_in_full_mode(self):
        out_only = FPEnv(flush=FlushMode.FLUSH_OUTPUTS)
        full = FPEnv(flush=FlushMode.FLUSH_INPUTS_OUTPUTS)
        assert float(out_only.flush_input(np.float64(1e-310))) == 1e-310
        assert float(full.flush_input(np.float64(1e-310))) == 0.0

    def test_observe_invalid(self):
        env = FPEnv()
        env.observe_result(math.nan, 1.0, 2.0)
        assert env.flags.invalid == 1

    def test_nan_propagation_not_invalid(self):
        env = FPEnv()
        env.observe_result(math.nan, math.nan, 2.0)
        assert env.flags.invalid == 0

    def test_observe_overflow(self):
        env = FPEnv()
        env.observe_result(math.inf, 1e308, 1e308)
        assert env.flags.overflow == 1

    def test_observe_division_by_zero(self):
        env = FPEnv()
        env.observe_division(math.inf, 1.0, 0.0)
        assert env.flags.divide_by_zero == 1
        assert env.flags.overflow == 0

    def test_observe_underflow(self):
        env = FPEnv()
        env.observe_result(1e-320, 1e-160, 1e-160)
        assert env.flags.underflow == 1

    def test_fp32_environment_casts(self):
        env = FPEnv(fptype=FPType.FP32)
        assert env.cast(1e-50) == 0.0  # below fp32 range


# ---------------------------------------------------------------- literals
class TestVarityLiterals:
    @pytest.mark.parametrize("value,expected", [
        (0.0, "+0.0"),
        (-0.0, "-0.0"),
        (1.3305e12, "+1.3305E12"),
        (-1.7744e-2, "-1.7744E-2"),
        (1.5793e-307, "+1.5793E-307"),
        (5.0, "+5.0000"),
    ])
    def test_fp64_format(self, value, expected):
        assert format_varity_literal(value) == expected

    def test_fp32_suffix(self):
        assert format_varity_literal(1.5, FPType.FP32).endswith("F")

    def test_fp16_suffix(self):
        text = format_varity_literal(1.5, FPType.FP16)
        assert text == "+1.5000F16"
        assert VARITY_LITERAL_RE.fullmatch(text)

    def test_parse_fp16(self):
        v = parse_varity_literal("+1.5000E3F16", FPType.FP16)
        assert v.dtype == np.float16 and float(v) == 1500.0
        # Above HALF_MAX the parsed value overflows to Inf, like a real
        # compiler folding the literal into a __half.
        assert math.isinf(float(parse_varity_literal("+9.9999E4", FPType.FP16)))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            format_varity_literal(math.inf)
        with pytest.raises(ValueError):
            format_varity_literal(math.nan)

    def test_parse_fp64(self):
        assert float(parse_varity_literal("+1.5793E-307")) == 1.5793e-307
        assert float(parse_varity_literal("-0.0")) == 0.0
        assert is_negative(float(parse_varity_literal("-0.0")))

    def test_parse_fp32(self):
        v = parse_varity_literal("+1.5000E0F", FPType.FP32)
        assert v.dtype == np.float32 and float(v) == 1.5

    def test_formats_match_regex(self):
        for v in (1.2345e-200, -9.9999e305, 0.5, -3.0):
            assert VARITY_LITERAL_RE.fullmatch(format_varity_literal(v))

    @given(st.floats(min_value=1e-300, max_value=1e300))
    @settings(max_examples=200)
    def test_text_value_consistency(self, x):
        """Formatting then parsing stays within the 4-digit rounding."""
        text = format_varity_literal(x)
        reparsed = float(parse_varity_literal(text))
        assert reparsed == pytest.approx(x, rel=1e-3)

    @given(st.floats(min_value=-1e306, max_value=1e306))
    @settings(max_examples=200)
    def test_parse_format_roundtrip_stable(self, x):
        """parse(format(x)) is a fixed point of format∘parse."""
        text = format_varity_literal(x)
        value = float(parse_varity_literal(text))
        assert format_varity_literal(value) == text
