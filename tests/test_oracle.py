"""Tests for the metamorphic-oracle subsystem (`repro.oracle`).

Covers, per the subsystem's acceptance bar:

* one seeded-violation fixture kernel per shipped relation — genuine
  model behavior where the healthy model violates a relation (FTZ,
  one-sided FMA contraction, fast-math class flips), defect injection
  where the relation is a theorem in a healthy model (fmod range,
  demote idempotence);
* determinism: byte-identical ledgers for repeated seeded sessions and
  across worker counts 0, 2, and 4; resume equivalence;
* the zero-redundant-runs invariant, proved through the execution
  service's dedup metrics;
* golden-file codegen for a relation's transformed kernel (mirroring
  ``tests/test_codegen_fp16.py``; regen with
  ``PYTHONPATH=src python tests/test_oracle.py --regen``);
* the campaign's oracle arm: violations on ``ArmResult``, checkpoint
  round-trip, report rendering.
"""

from __future__ import annotations

import random
from pathlib import Path

import numpy as np
import pytest

from repro.codegen.cuda import render_cuda
from repro.codegen.hip import render_hip
from repro.compilers.options import PAPER_OPT_SETTINGS
from repro.errors import HarnessError
from repro.exec import ExecutionService
from repro.fp.types import FPType
from repro.fp.ulp import nextafter_n
from repro.harness.campaign import ArmResult, CampaignConfig, run_campaign
from repro.ir.builder import IRBuilder
from repro.ir.nodes import BinOp, FMA
from repro.ir.validate import validate_kernel
from repro.oracle.engine import (
    OracleConfig,
    oracle_check_outcomes,
    oracle_requests_for,
    run_oracle,
)
from repro.oracle.relations import RELATION_NAMES, RELATIONS, resolve_relations
from repro.utils.rng import derive_seed
from repro.varity.inputs import InputVector
from repro.varity.testcase import TestCase

import repro.devices.mathlib.libdevice as libdevice

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _fp32_test(body_builder, texts, program_id):
    b = IRBuilder(FPType.FP32)
    kernel = body_builder(b)
    assert not validate_kernel(kernel)
    vec = InputVector.from_texts(texts, kernel)
    return TestCase(b.program(kernel, program_id=program_id), [vec])


def _check_fixture(test, relation_names, seed=1, ulp_bound=4):
    """Run one fixture through the engine's chunk + check machinery."""
    relations = resolve_relations(relation_names)
    plan = oracle_requests_for(test, 0, seed, relations, PAPER_OPT_SETTINGS)
    with ExecutionService() as service:
        outcomes = service.run_chunk(plan.requests)
        metrics = dict(vars(service.metrics))
    violations, runs = oracle_check_outcomes(plan, outcomes, relations, ulp_bound)
    return violations, metrics, runs


#: the cancellation pair: round(a*a) + c == 0, fused a*a + c == 2^-24.
_A = repr(1.0 + 2.0**-12)
_C = repr(-(1.0 + 2.0**-11))


def _fma_fixture():
    return _fp32_test(
        lambda b: b.kernel(
            params=[b.fparam("comp"), b.fparam("var_2"), b.fparam("var_3"), b.fparam("var_4")],
            body=[
                b.assign(
                    "comp", b.add(b.mul(b.var("var_2"), b.var("var_3")), b.var("var_4"))
                )
            ],
        ),
        ["+0.0", _A, _A, _C],
        "fixture-fma",
    )


class TestSeededViolationFixtures:
    """One fixture kernel per shipped relation, each detected."""

    def test_fma_rewrite_detects_contraction_sensitivity(self):
        """Cancellation kernel: the unfused form prints Zero, the fused
        variant 2^-24 — a Zero→Num flip at O0 on both platforms (at O1+
        both compilers contract the base themselves, so base == variant)."""
        violations, _, _ = _check_fixture(_fma_fixture(), ["fma-rewrite"])
        assert violations, "fma-rewrite fixture produced no violation"
        assert {v.relation for v in violations} == {"fma-rewrite"}
        o0 = [v for v in violations if v.opt_label == "O0"]
        assert {v.platform for v in o0} == {"nvcc", "hipcc"}
        assert all((v.base_outcome, v.variant_outcome) == ("Zero", "Num") for v in o0)

    def test_mul_one_detects_ftz_flush(self):
        """A subnormal flowing through `comp = var_2` untouched is flushed
        by the inserted *1.0 under hipcc's fast-math FTZ; nvcc's model
        folds x*1 away first, so the violation is hipcc-only — exactly the
        single-stack asymmetry the relation exists to catch."""
        test = _fp32_test(
            lambda b: b.kernel(
                params=[b.fparam("comp"), b.fparam("var_2")],
                body=[b.assign("comp", b.var("var_2"))],
            ),
            ["+0.0", "1e-40"],
            "fixture-mulone",
        )
        violations, _, _ = _check_fixture(test, ["mul-one"])
        assert violations
        assert all(v.relation == "mul-one" for v in violations)
        assert {(v.platform, v.opt_label) for v in violations} == {("hipcc", "O3_FM")}
        assert all((v.base_outcome, v.variant_outcome) == ("Num", "Zero") for v in violations)

    def test_mul_one_excludes_contractible_multiplies(self):
        """Wrapping the a*b of a contractible a*b+c would change the FMA
        contraction shape (fma(a*b,1,c) vs fma(a,b,c)) — a legal
        one-rounding drift, not a defect — so those sites are excluded
        and the relation stays violation-free on the cancellation-prone
        kernel at every site choice."""
        a = repr(1.0 + 2.0**-23)
        test = _fp32_test(
            lambda b: b.kernel(
                params=[b.fparam("comp"), b.fparam("var_2"), b.fparam("var_3"), b.fparam("var_4")],
                body=[
                    b.assign(
                        "comp",
                        b.add(b.mul(b.var("var_2"), b.var("var_3")), b.var("var_4")),
                    )
                ],
            ),
            ["+0.0", a, a, repr(2.0**-24)],
            "fixture-mulone-sound",
        )
        rel = RELATIONS["mul-one"]
        wrapped_muls = {
            str(v.program.kernel.body[0].expr)
            for s in range(64)
            for _, v in rel.variants(test, random.Random(s))
        }
        for seed in range(16):
            violations, _, _ = _check_fixture(test, ["mul-one"], seed=seed)
            assert violations == [], (
                f"seed {seed} fired on a contraction-shape change: "
                f"{[v.describe() for v in violations]} (variants seen: {wrapped_muls})"
            )

    def test_commute_swap_detects_one_sided_contraction(self):
        """`c + a*b` does not contract on the modeled hipcc; the swapped
        `a*b + c` does.  With the cancellation inputs the swap flips
        Zero→Num at every O1+ setting on hipcc only."""
        test = _fp32_test(
            lambda b: b.kernel(
                params=[b.fparam("comp"), b.fparam("var_2"), b.fparam("var_3"), b.fparam("var_4")],
                body=[
                    b.assign(
                        "comp",
                        b.add(b.var("var_2"), b.mul(b.var("var_3"), b.var("var_4"))),
                    )
                ],
            ),
            ["+0.0", _C, _A, _A],
            "fixture-swap",
        )
        # The kernel has two swappable sites (the + and the *); pick a
        # session seed whose derived rng chooses the +.  Swapping the *
        # is exact everywhere (fma(a,b,c) == fma(b,a,c)), so only the +
        # choice exercises the shape sensitivity.
        rel = RELATIONS["commute-swap"]
        seed = next(
            s
            for s in range(64)
            if (
                lambda variants: variants
                and isinstance(variants[0][1].program.kernel.body[0].expr, BinOp)
                and isinstance(variants[0][1].program.kernel.body[0].expr.left, BinOp)
            )(
                rel.variants(
                    test, random.Random(derive_seed(s, "oracle-site", rel.name, 0))
                )
            )
        )
        violations, _, _ = _check_fixture(test, ["commute-swap"], seed=seed)
        assert violations
        assert {v.platform for v in violations} == {"hipcc"}
        assert {v.opt_label for v in violations} == {"O1", "O2", "O3", "O3_FM"}

    def test_fastmath_flag_detects_class_flip(self):
        """A subnormal quotient survives O3 and is flushed to Zero under
        the fast-math flag on both stacks — and the relation reads it out
        of the base sweep alone (no variant program)."""
        test = _fp32_test(
            lambda b: b.kernel(
                params=[b.fparam("comp"), b.fparam("var_2"), b.fparam("var_3")],
                body=[b.assign("comp", b.div(b.var("var_2"), b.var("var_3")))],
            ),
            ["+0.0", "1e-30", "1e10"],
            "fixture-fm",
        )
        violations, metrics, _ = _check_fixture(test, ["fastmath-flag"])
        assert violations
        assert {v.platform for v in violations} == {"nvcc", "hipcc"}
        assert all((v.base_outcome, v.variant_outcome) == ("Num", "Zero") for v in violations)
        # Zero extra programs: only the base sweep executed.
        assert metrics["executed"] == 1

    def test_fmod_identity_detects_out_of_range_remainder(self):
        """Healthy fmod is idempotent; an injected reduction defect that
        returns an out-of-range remainder (|r| >= |y|) is caught because
        the re-applied fmod reduces it further."""
        test = _fp32_test(
            lambda b: b.kernel(
                params=[b.fparam("comp"), b.fparam("var_2"), b.fparam("var_3")],
                body=[b.assign("comp", b.call("fmod", b.var("var_2"), b.var("var_3")))],
            ),
            ["+0.0", "1e30", "3.0"],
            "fixture-fmod",
        )
        clean, _, _ = _check_fixture(test, ["fmod-identity"])
        assert clean == []

        import math

        orig = libdevice.nvidia_fmod

        def broken_fmod(x, y, fptype):
            if abs(x) > abs(y) * 2.0**24:
                # Defect: skip the tail of the reduction, leaving the
                # remainder two divisors out of range.
                return float(fptype.dtype.type(math.fmod(x, y) + 2 * abs(y)))
            return orig(x, y, fptype)

        libdevice.nvidia_fmod = broken_fmod
        try:
            violations, _, _ = _check_fixture(test, ["fmod-identity"])
        finally:
            libdevice.nvidia_fmod = orig
        assert violations
        assert {v.platform for v in violations} == {"nvcc"}
        assert all(v.relation == "fmod-identity" for v in violations)

    def test_demote_roundtrip_detects_non_idempotent_conversion(self):
        """Healthy binary16 rounding is idempotent; an injected conversion
        that drifts one half-ULP per application breaks
        demote(demote(e)) == demote(e) and is caught."""
        test = _fp32_test(
            lambda b: b.kernel(
                params=[b.fparam("comp"), b.fparam("var_2")],
                body=[b.assign("comp", b.var("var_2"))],
            ),
            ["+0.0", "1.3"],
            "fixture-demote",
        )
        clean, _, _ = _check_fixture(test, ["demote-roundtrip"])
        assert clean == []

        orig = libdevice.demote_through_fp16

        def sloppy_demote(value, fptype):
            rounded = np.float16(value)
            return float(fptype.dtype.type(nextafter_n(float(rounded), 1, FPType.FP16)))

        libdevice.demote_through_fp16 = sloppy_demote
        try:
            violations, _, _ = _check_fixture(test, ["demote-roundtrip"])
        finally:
            libdevice.demote_through_fp16 = orig
        assert violations
        assert {v.platform for v in violations} == {"nvcc"}
        assert all(v.relation == "demote-roundtrip" for v in violations)
        assert all(v.ulp_distance is not None and v.ulp_distance > 4 for v in violations)
        # Variant-vs-variant checkers still report the checked program's
        # own id, not a variant's synthetic content id.
        assert {v.test_id for v in violations} == {"fixture-demote"}


class TestDedupInvariant:
    """Relations' base re-requests execute zero redundant runs."""

    def test_base_requests_dedup_to_one_execution(self):
        """A fixture where four base-reading relations apply: the chunk
        carries four identical base requests, the service executes one
        and serves three as dedup hits with zero execution counters."""
        test = _fp32_test(
            lambda b: b.kernel(
                params=[b.fparam("comp"), b.fparam("var_2"), b.fparam("var_3")],
                body=[
                    b.assign(
                        "comp",
                        b.add(
                            b.mul(b.var("var_2"), b.var("var_3")),
                            b.call("fmod", b.var("var_2"), b.var("var_3")),
                        ),
                    )
                ],
            ),
            ["+0.0", "2.5", "1.5"],
            "fixture-dedup",
        )
        relations = resolve_relations(RELATION_NAMES)
        plan = oracle_requests_for(test, 0, 1, relations, PAPER_OPT_SETTINGS)
        base_requests = [r for r in plan.requests if r.tag[2] == "base"]
        # fma-rewrite, mul-one, fmod-identity, commute-swap, fastmath-flag
        # all read the base here; demote-roundtrip compares its two
        # variants and requests no base.
        assert len(base_requests) == 5
        with ExecutionService() as service:
            outcomes = service.run_chunk(plan.requests)
            metrics = dict(vars(service.metrics))
        assert metrics["deduped"] == len(base_requests) - 1
        assert metrics["requests"] == metrics["executed"] + metrics["deduped"]
        for outcome in outcomes:
            if outcome.deduped:
                assert outcome.nvcc_executions == 0
                assert outcome.hipcc_executions == 0

    def test_session_metrics_expose_the_proof(self):
        result = run_oracle(OracleConfig(n_programs=4, inputs_per_program=2))
        assert result.exec_metrics["requests"] == (
            result.exec_metrics["executed"] + result.exec_metrics["deduped"]
        )
        assert result.exec_metrics["deduped"] > 0


class TestOracleDeterminism:
    """Same seed ⇒ byte-identical ledgers, at every worker count."""

    CONFIG = dict(seed=11, n_programs=6, inputs_per_program=2)

    def test_repeated_sessions_write_identical_ledgers(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_oracle(OracleConfig(**self.CONFIG), ledger=a)
        run_oracle(OracleConfig(**self.CONFIG), ledger=b)
        assert a.read_bytes() == b.read_bytes()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_does_not_change_the_ledger(self, tmp_path, workers):
        serial, pooled = tmp_path / "serial.jsonl", tmp_path / "pooled.jsonl"
        run_oracle(OracleConfig(**self.CONFIG), ledger=serial)
        run_oracle(OracleConfig(workers=workers, **self.CONFIG), ledger=pooled)
        assert serial.read_bytes() == pooled.read_bytes()

    def test_resume_continues_where_the_ledger_stopped(self, tmp_path):
        straight, split = tmp_path / "straight.jsonl", tmp_path / "split.jsonl"
        run_oracle(OracleConfig(seed=11, n_programs=6, inputs_per_program=2), ledger=straight)
        run_oracle(OracleConfig(seed=11, n_programs=3, inputs_per_program=2), ledger=split)
        resumed = run_oracle(
            OracleConfig(seed=11, n_programs=6, inputs_per_program=2),
            ledger=split,
            resume=True,
        )
        assert resumed.resumed_programs == 3
        assert split.read_bytes() == straight.read_bytes()

    def test_resume_with_smaller_budget_reports_recorded_extent(self, tmp_path):
        """A ledger recording 6 programs resumed under --programs 3 runs
        nothing new, and the session reports the recorded extent (6) so
        the violation totals and the program count stay consistent."""
        path = tmp_path / "o.jsonl"
        full = run_oracle(OracleConfig(seed=11, n_programs=6, inputs_per_program=2), ledger=path)
        before = path.read_bytes()
        shrunk = run_oracle(
            OracleConfig(seed=11, n_programs=3, inputs_per_program=2),
            ledger=path,
            resume=True,
        )
        assert shrunk.programs_checked == 6
        assert len(shrunk.violations) == len(full.violations)
        assert shrunk.checked_by_relation == full.checked_by_relation
        assert path.read_bytes() == before

    def test_resume_refuses_a_mismatched_ledger(self, tmp_path):
        path = tmp_path / "o.jsonl"
        run_oracle(OracleConfig(seed=11, n_programs=2, inputs_per_program=2), ledger=path)
        with pytest.raises(HarnessError):
            run_oracle(
                OracleConfig(seed=12, n_programs=2, inputs_per_program=2),
                ledger=path,
                resume=True,
            )

    def test_fingerprint_excludes_budget_and_workers(self):
        small = OracleConfig(seed=1, n_programs=5)
        large = OracleConfig(seed=1, n_programs=50, workers=4)
        assert small.fingerprint() == large.fingerprint()


class TestRelationTransforms:
    """Structural sanity of the transformed variants."""

    def test_all_variants_validate(self):
        test = _fma_fixture()
        for name in RELATION_NAMES:
            rel = RELATIONS[name]
            for label, variant in rel.variants(test, random.Random(7)):
                issues = validate_kernel(variant.program.kernel)
                assert not issues, f"{name}:{label} produced invalid kernel: {issues}"

    def test_variants_preserve_signature_and_inputs(self):
        test = _fma_fixture()
        for name in RELATION_NAMES:
            for _, variant in RELATIONS[name].variants(test, random.Random(7)):
                assert variant.program.kernel.params == test.program.kernel.params
                assert variant.inputs == test.inputs

    def test_fma_rewrite_expands_existing_fma_nodes(self):
        b = IRBuilder(FPType.FP32)
        kernel = b.kernel(
            params=[b.fparam("comp"), b.fparam("var_2")],
            body=[b.assign("comp", FMA(b.var("var_2"), b.var("var_2"), b.lit(1.0)))],
        )
        test = TestCase(
            b.program(kernel, program_id="fma-expand"),
            [InputVector.from_texts(["+0.0", "1.5"], kernel)],
        )
        variants = RELATIONS["fma-rewrite"].variants(test, random.Random(3))
        assert [label for label, _ in variants] == ["expand"]
        expr = variants[0][1].program.kernel.body[0].expr
        assert isinstance(expr, BinOp) and expr.op == "+"

    def test_demote_roundtrip_skips_fp16_kernels(self):
        b = IRBuilder(FPType.FP16)
        kernel = b.kernel(
            params=[b.fparam("comp"), b.fparam("var_2")],
            body=[b.assign("comp", b.var("var_2"))],
        )
        test = TestCase(
            b.program(kernel, program_id="fp16-noop"),
            [InputVector.from_texts(["+0.0", "1.5"], kernel)],
        )
        assert RELATIONS["demote-roundtrip"].variants(test, random.Random(1)) == []


def _golden_variant():
    """The fixed fma-rewrite variant pinned by the codegen goldens."""
    variants = RELATIONS["fma-rewrite"].variants(_fma_fixture(), random.Random(0))
    assert [label for label, _ in variants] == ["contract"]
    return variants[0][1]


class TestOracleGoldens:
    """The transformed kernel's rendered artifacts are byte-pinned, like
    the FP16 lane's goldens: the content-keyed store and the dedup proof
    both consume this exact text."""

    def test_cuda_golden(self):
        rendered = render_cuda(_golden_variant().program)
        golden = (GOLDEN_DIR / "oracle_fma_variant.cu").read_text(encoding="utf-8")
        assert rendered == golden

    def test_hip_golden(self):
        rendered = render_hip(_golden_variant().program)
        golden = (GOLDEN_DIR / "oracle_fma_variant.hip").read_text(encoding="utf-8")
        assert rendered == golden

    def test_contracted_shape_renders_as_fma_call(self):
        assert "fmaf(var_2, var_3, var_4)" in render_cuda(_golden_variant().program)


class TestCampaignOracleArm:
    """`repro-campaign --oracle`: the arm, its accounting, its checkpoint."""

    CONFIG = dict(
        seed=5,
        n_programs_fp64=4,
        n_programs_fp32=4,
        inputs_per_program=2,
        include_hipify=False,
        include_fp32=False,
        include_oracle=True,
        n_programs_oracle=10,
    )

    def test_oracle_arm_reports_violations(self):
        result = run_campaign(CampaignConfig(**self.CONFIG))
        arm = result.arms["oracle"]
        assert arm.n_programs == 10
        assert sum(arm.oracle_checked.values()) > 0
        assert arm.discrepancies == []  # single-stack arm: no differential noise
        assert arm.runs_per_compiler > 0
        for v in arm.oracle_violations:
            assert v.relation in RELATION_NAMES
            # The oracle corpus has its own id namespace: an oracle
            # violation's test_id must never collide with an fp32-arm
            # program id (both arms would otherwise mint prog-fp32-NNNNNN
            # for different kernels).
            assert v.test_id.startswith("oracle-")

    def test_checkpoint_roundtrip_preserves_violations(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        config = CampaignConfig(**self.CONFIG)
        first = run_campaign(config, checkpoint=ck)
        resumed = run_campaign(config, checkpoint=ck, resume=True)
        assert resumed.resumed_steps > 0
        a, b = first.arms["oracle"], resumed.arms["oracle"]
        assert [v.to_json_dict() for v in a.oracle_violations] == [
            v.to_json_dict() for v in b.oracle_violations
        ]
        assert a.oracle_checked == b.oracle_checked
        assert a.runs_by_opt == b.runs_by_opt

    def test_arm_result_json_roundtrip(self):
        result = run_campaign(CampaignConfig(**self.CONFIG))
        arm = result.arms["oracle"]
        rebuilt = ArmResult.from_json_dict(arm.to_json_dict())
        assert rebuilt.oracle_checked == arm.oracle_checked
        assert [v.to_json_dict() for v in rebuilt.oracle_violations] == [
            v.to_json_dict() for v in arm.oracle_violations
        ]

    def test_report_renders_violation_table(self):
        from repro.analysis.report import render_campaign_report

        result = run_campaign(CampaignConfig(**self.CONFIG))
        report = render_campaign_report(result, include_adjacency=False)
        assert "Metamorphic-relation violations" in report
        assert "fastmath-flag" in report

    def test_pre_oracle_fingerprint_unchanged(self):
        with_arm = CampaignConfig(**self.CONFIG)
        without = CampaignConfig(**{**self.CONFIG, "include_oracle": False})
        assert "include_oracle" in with_arm.fingerprint()
        assert "include_oracle" not in without.fingerprint()


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    program = _golden_variant().program
    (GOLDEN_DIR / "oracle_fma_variant.cu").write_text(
        render_cuda(program), encoding="utf-8"
    )
    (GOLDEN_DIR / "oracle_fma_variant.hip").write_text(
        render_hip(program), encoding="utf-8"
    )
    print(f"regenerated goldens under {GOLDEN_DIR}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
