"""Tests for the distributed bridge (repro.bridge).

The contracts pinned here are the subsystem's acceptance criteria: the
job queue's lease/ack state machine (expiry re-queues a dead worker's
chunk, the guarded commit is exactly-once), ordered delivery from
:class:`BridgeBackend` making campaign JSON and fuzz ledgers
byte-identical to serial at any worker count, the SQLite run-store
tier's protocol compatibility and JSONL migration, and the JSONL
store's single-writer lock.

Workers run as in-process threads pulling from a real HTTP server on a
loopback port — the full wire path, without process-spawn latency.  A
SIGKILLed worker is, to the server, a worker that leased a chunk and
went silent; the kill tests model exactly that.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.bridge import BridgeBackend, BridgeClient, BridgeError, JobQueue, SqliteRunStore
from repro.bridge.schemas import PROTOCOL_VERSION, decode_blob, encode_blob
from repro.bridge.server import start_server
from repro.bridge.worker import run_worker
from repro.errors import HarnessError
from repro.exec import RunStore, resolve_backend
from repro.fuzz.engine import FuzzConfig, run_fuzz
from repro.harness.campaign import CampaignConfig
from repro.harness.outcomes import RunRecord
from repro.oracle.engine import OracleConfig


# Chunk functions must be module-level (pickled by reference, exactly
# like the process pool's contract).
def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom on {x}")


def _slow_square(x):
    time.sleep(0.5)
    return x * x


def _record(idx: int, value: float, printed=None, flags=None) -> RunRecord:
    return RunRecord(
        test_id="orig",
        input_index=idx,
        opt_label="O0",
        compiler="nvcc",
        printed=printed if printed is not None else repr(value),
        value=value,
        flags=flags,
    )


@contextmanager
def _fleet(tmp_path, n_workers, **server_kwargs):
    """A live bridge server plus ``n_workers`` worker threads."""
    server = start_server(tmp_path / "queue.sqlite", **server_kwargs)
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=run_worker,
            args=(server.url,),
            kwargs=dict(worker_id=f"w{i}", poll_seconds=0.01, stop_event=stop),
            daemon=True,
        )
        for i in range(n_workers)
    ]
    for t in threads:
        t.start()
    try:
        yield server
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10)
        server.close()


# ------------------------------------------------------------- job queue
class TestJobQueue:
    def test_submit_lease_complete_collect(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as queue:
            assert queue.submit("r", [(0, "p0"), (1, "p1")]) == 2
            # Re-submitting is idempotent: the first submission wins.
            assert queue.submit("r", [(0, "other")]) == 0
            jobs = queue.lease("w1", max_jobs=2)
            assert [j.index for j in jobs] == [0, 1]
            assert jobs[0].payload == "p0"
            for job in jobs:
                assert queue.complete(
                    job.job_id, "w1", job.lease_token, f"res{job.index}"
                )
            results = queue.collect("r")
            assert [(r.index, r.result, r.attempts, r.worker) for r in results] == [
                (0, "res0", 1, "w1"),
                (1, "res1", 1, "w1"),
            ]
            # Collection is destructive: the queue holds no history.
            assert queue.collect("r") == []
            assert queue.counts() == {"pending": 0, "leased": 0, "done": 0, "failed": 0}

    def test_expired_lease_requeues_and_counts_the_attempt(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite", lease_seconds=0.05) as queue:
            queue.submit("r", [(0, "p")])
            dead = queue.lease("w-dead")[0]
            time.sleep(0.1)  # w-dead goes silent (what SIGKILL looks like)
            released = queue.lease("w-live")
            assert [j.index for j in released] == [0]
            assert queue.attempts_for("r", 0) == 2
            # The dead worker's late commit presents a stale token.
            assert not queue.complete(dead.job_id, "w-dead", dead.lease_token, "stale")
            live = released[0]
            assert queue.complete(live.job_id, "w-live", live.lease_token, "good")
            (result,) = queue.collect("r")
            assert (result.result, result.attempts, result.worker) == ("good", 2, "w-live")

    def test_late_commit_of_expired_unreleased_chunk_is_accepted(self, tmp_path):
        """A slow-but-alive worker whose lease expired still wins the
        commit as long as nobody re-leased the chunk — accepting the
        late result saves the retry."""
        with JobQueue(tmp_path / "q.sqlite", lease_seconds=0.05) as queue:
            queue.submit("r", [(0, "p")])
            job = queue.lease("w1")[0]
            time.sleep(0.1)
            assert queue.collect("r") == []  # scan re-queues the chunk
            assert queue.complete(job.job_id, "w1", job.lease_token, "late")
            (result,) = queue.collect("r")
            assert result.result == "late" and result.attempts == 1

    def test_exhausted_expiries_park_the_chunk_with_a_diagnosis(self, tmp_path):
        with JobQueue(
            tmp_path / "q.sqlite", lease_seconds=0.05, max_attempts=2
        ) as queue:
            queue.submit("r", [(0, "p")])
            for _ in range(2):
                assert queue.lease("w-cursed")
                time.sleep(0.1)
            assert queue.lease("w-next") == []  # parked, not re-queued
            (result,) = queue.collect("r")
            assert result.result is None
            assert "lease expired 2 times" in result.error
            assert "w-cursed" in result.error

    def test_fail_requeues_then_parks_with_the_traceback(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite", max_attempts=2) as queue:
            queue.submit("r", [(0, "p")])
            job = queue.lease("w1")[0]
            assert queue.fail(job.job_id, "w1", job.lease_token, "Trace 1")
            assert queue.counts()["pending"] == 1  # one attempt left
            retry = queue.lease("w2")[0]
            assert queue.fail(retry.job_id, "w2", retry.lease_token, "Trace 2")
            (result,) = queue.collect("r")
            assert result.error == "Trace 2" and result.attempts == 2
            # A stale fail report (job already gone) is rejected.
            assert not queue.fail(retry.job_id, "w2", retry.lease_token, "again")

    def test_double_commit_changes_nothing(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as queue:
            queue.submit("r", [(0, "p")])
            job = queue.lease("w1")[0]
            assert queue.complete(job.job_id, "w1", job.lease_token, "first")
            assert not queue.complete(job.job_id, "w1", job.lease_token, "second")
            (result,) = queue.collect("r")
            assert result.result == "first"

    def test_reopen_requeues_leased_rows(self, tmp_path):
        """Server restart: the old process's monotonic deadlines are
        meaningless, so every leased row goes back to pending."""
        path = tmp_path / "q.sqlite"
        with JobQueue(path, lease_seconds=3600.0) as queue:
            queue.submit("r", [(0, "p")])
            assert queue.lease("w1")
        with JobQueue(path) as reopened:
            assert reopened.counts()["pending"] == 1
            assert [j.index for j in reopened.lease("w2")] == [0]

    def test_cancel_drops_the_run(self, tmp_path):
        with JobQueue(tmp_path / "q.sqlite") as queue:
            queue.submit("r1", [(0, "p"), (1, "p")])
            queue.submit("r2", [(0, "p")])
            assert queue.cancel("r1") == 2
            assert queue.counts()["pending"] == 1

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            JobQueue(tmp_path / "q.sqlite", lease_seconds=0)
        with pytest.raises(ValueError):
            JobQueue(tmp_path / "q.sqlite", max_attempts=0)
        with JobQueue(tmp_path / "q2.sqlite") as queue:
            with pytest.raises(ValueError):
                queue.lease("w", max_jobs=0)


# ------------------------------------------------------- server protocol
class TestBridgeServer:
    def test_health_and_wire_round_trip(self, tmp_path):
        with start_server(tmp_path / "q.sqlite") as server:
            client = BridgeClient(server.url)
            assert client.health()["protocol"] == PROTOCOL_VERSION
            assert client.submit("r", [(0, "p0"), (1, "p1")]) == 2
            jobs = client.lease("worker-a", max_jobs=2)
            assert [j.index for j in jobs] == [0, 1]
            assert client.heartbeat("worker-a", [j.job_id for j in jobs]) == [
                j.job_id for j in jobs
            ]
            for job in jobs:
                assert client.complete(
                    job.job_id, "worker-a", job.lease_token, f"res{job.index}"
                )
            results = client.results("r", wait_seconds=5.0)
            assert [(r.index, r.result) for r in results] == [(0, "res0"), (1, "res1")]

    def test_protocol_mismatch_refused_before_parsing(self, tmp_path):
        with start_server(tmp_path / "q.sqlite") as server:
            req = urllib.request.Request(
                server.url + "/v1/lease",
                data=json.dumps({"protocol": 999, "worker": "w"}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req, timeout=10)
            assert excinfo.value.code == 400
            assert "protocol mismatch" in json.loads(excinfo.value.read())["error"]

    def test_unknown_endpoint_and_malformed_request(self, tmp_path):
        with start_server(tmp_path / "q.sqlite") as server:
            client = BridgeClient(server.url)
            with pytest.raises(BridgeError, match="404"):
                client._request("/v1/nope", {})
            with pytest.raises(BridgeError, match="malformed"):
                client._request("/v1/complete", {"job_id": 1})  # missing fields

    def test_unreachable_server_names_the_fix(self):
        with pytest.raises(BridgeError, match="repro-bridge"):
            BridgeClient("http://127.0.0.1:9", timeout=0.5).health()


# ------------------------------------------------------- backend + worker
class TestBridgeBackend:
    def test_ordered_results_at_any_worker_count(self, tmp_path):
        for n_workers in (1, 3):
            with _fleet(tmp_path / f"f{n_workers}", n_workers) as server:
                backend = BridgeBackend(server.url, poll_seconds=0.2)
                expected = [x * x for x in range(17)]
                assert list(backend.imap(_square, range(17))) == expected
                # Unordered delivers submission order too — it is a valid
                # completion order, and determinism costs nothing.
                assert list(backend.imap_unordered(_square, range(17))) == expected
                backend.close()

    def test_empty_batch_yields_nothing(self, tmp_path):
        with _fleet(tmp_path, 1) as server:
            assert list(BridgeBackend(server.url).imap(_square, [])) == []

    def test_chunk_error_surfaces_attempts_and_traceback(self, tmp_path):
        with _fleet(tmp_path, 1, max_attempts=2) as server:
            backend = BridgeBackend(server.url, poll_seconds=0.2)
            with pytest.raises(BridgeError, match="after 2 attempt") as excinfo:
                list(backend.imap(_boom, [7]))
            assert "boom on 7" in str(excinfo.value)

    def test_backend_fails_fast_when_bridge_is_down(self):
        with pytest.raises(BridgeError, match="unreachable"):
            BridgeBackend("http://127.0.0.1:9")

    def test_abandoned_run_cancels_its_jobs(self, tmp_path):
        with start_server(tmp_path / "q.sqlite") as server:
            backend = BridgeBackend(server.url, poll_seconds=0.05)
            it = backend.imap(_square, range(4))  # no workers: nothing finishes
            it.close()  # abandon the generator mid-run
            assert server.queue.counts()["pending"] == 0

    def test_killed_worker_chunk_requeued_and_executed_exactly_once(self, tmp_path):
        """The durability acceptance test.  A worker leases a chunk and
        dies (to the server: silence — no heartbeat, no commit); after
        lease expiry the chunk is re-queued, a live worker executes it,
        and the dead worker's late result cannot land."""
        with start_server(
            tmp_path / "q.sqlite", lease_seconds=0.3
        ) as server:
            client = BridgeClient(server.url)
            run_id = "run-kill"
            client.submit(
                run_id, [(i, encode_blob((_square, i))) for i in range(3)]
            )
            # The doomed worker takes chunk 0 and is SIGKILLed mid-chunk.
            (doomed,) = client.lease("w-dead", max_jobs=1)
            assert doomed.index == 0

            stop = threading.Event()
            live = threading.Thread(
                target=run_worker,
                args=(server.url,),
                kwargs=dict(worker_id="w-live", poll_seconds=0.02, stop_event=stop),
                daemon=True,
            )
            live.start()
            try:
                results = {}
                deadline = time.monotonic() + 30.0
                while len(results) < 3 and time.monotonic() < deadline:
                    for res in client.results(run_id, wait_seconds=1.0):
                        results[res.index] = res
                assert sorted(results) == [0, 1, 2]
                # Exactly once: chunk 0 ran on its second lease, on the
                # live worker, and produced the one committed result.
                assert results[0].attempts == 2
                assert results[0].worker == "w-live"
                assert all(decode_blob(results[i].result) == i * i for i in range(3))
                assert results[1].attempts == 1 and results[2].attempts == 1
                # The ghost's commit is rejected — its chunk is gone.
                assert not client.complete(
                    doomed.job_id, "w-dead", doomed.lease_token, encode_blob(999)
                )
                assert client.results(run_id) == []
            finally:
                stop.set()
                live.join(timeout=10)

    def test_heartbeat_keeps_a_slow_chunk_alive(self, tmp_path):
        """A chunk slower than its lease survives (the worker heartbeats
        at lease/3); only *dead* workers lose their chunks."""
        with start_server(tmp_path / "q.sqlite", lease_seconds=0.2) as server:
            client = BridgeClient(server.url)
            client.submit("r", [(0, encode_blob((_slow_square, 6)))])
            stop = threading.Event()
            worker = threading.Thread(
                target=run_worker,
                args=(server.url,),
                kwargs=dict(worker_id="w-slow", poll_seconds=0.02, stop_event=stop),
                daemon=True,
            )
            worker.start()
            try:
                (result,) = client.results("r", wait_seconds=30.0)
                assert decode_blob(result.result) == 36
                assert result.attempts == 1  # the lease never expired
            finally:
                stop.set()
                worker.join(timeout=10)

    def test_worker_exit_conditions(self, tmp_path):
        with start_server(tmp_path / "q.sqlite") as server:
            client = BridgeClient(server.url)
            client.submit("r", [(i, encode_blob((_square, i))) for i in range(2)])
            assert run_worker(server.url, max_chunks=2, poll_seconds=0.01) == 2
            assert (
                run_worker(server.url, max_idle_seconds=0.05, poll_seconds=0.01) == 0
            )


# ------------------------------------------------------ backend registry
class TestResolveBackend:
    def test_names(self, tmp_path):
        assert resolve_backend(None, 0).name == "serial"
        pool = resolve_backend(None, 3)
        assert pool.name == "process-pool" and pool.workers == 3
        pool.close()
        assert resolve_backend("serial", 4).name == "serial"
        defaulted = resolve_backend("pool", None)
        assert defaulted.workers == 2
        defaulted.close()
        with start_server(tmp_path / "q.sqlite") as server:
            assert resolve_backend("bridge", None, server.url).name == "bridge"

    def test_errors(self):
        with pytest.raises(HarnessError, match="bridge-url"):
            resolve_backend("bridge", None, None)
        with pytest.raises(HarnessError, match="unknown backend"):
            resolve_backend("warp", None)


# --------------------------------------------- serial/bridge equivalence
class TestBridgeInvariance:
    def test_campaign_json_identical_serial_vs_bridge(self, tmp_path):
        """The acceptance bar: a bridge campaign at 1, 2, and 4 workers
        produces byte-identical JSON to a serial run — every result and
        counter, not just the summary."""
        from repro.cli import main

        def payload(out, extra=()):
            assert (
                main(
                    [
                        "--seed", "7", "--fp64-programs", "4", "--fp32-programs", "2",
                        "--inputs", "2", "--json", str(out), *extra,
                    ]
                )
                == 0
            )
            data = json.loads(out.read_text())
            # The only legitimately scheduling-dependent fields.
            data.pop("elapsed_seconds")
            data["config"].pop("workers")
            data["exec"].pop("phase_seconds")
            return json.dumps(data, sort_keys=True)

        serial = payload(tmp_path / "serial.json")
        for n_workers in (1, 2, 4):
            with _fleet(tmp_path / f"fleet{n_workers}", n_workers) as server:
                bridged = payload(
                    tmp_path / f"bridge-w{n_workers}.json",
                    ("--backend", "bridge", "--bridge-url", server.url),
                )
            assert bridged == serial, f"bridge campaign diverged at {n_workers} workers"

    def test_fuzz_ledger_identical_serial_vs_bridge(self, tmp_path):
        config = FuzzConfig(
            seed=11,
            n_seed_programs=8,
            inputs_per_program=2,
            max_mutants=8,
            batch_size=4,
            minimize=False,
        )
        run_fuzz(config, ledger=tmp_path / "serial.jsonl")
        with _fleet(tmp_path, 2) as server:
            run_fuzz(
                dataclasses.replace(
                    config, backend="bridge", bridge_url=server.url
                ),
                ledger=tmp_path / "bridge.jsonl",
            )
        assert (tmp_path / "serial.jsonl").read_bytes() == (
            tmp_path / "bridge.jsonl"
        ).read_bytes()

    def test_backend_excluded_from_every_fingerprint(self):
        """Backend choice is pure scheduling, like --workers: a serial
        ledger/checkpoint must resume under a bridge config."""
        for cls in (CampaignConfig, FuzzConfig, OracleConfig):
            assert (
                cls(backend="bridge", bridge_url="http://example:1").fingerprint()
                == cls().fingerprint()
            ), cls.__name__


# ---------------------------------------------------------- CLI plumbing
class TestBridgeCliValidation:
    @pytest.mark.parametrize("module", ["repro.cli", "repro.fuzz.cli", "repro.oracle.cli"])
    def test_bridge_flags_validated(self, module):
        import importlib

        main = importlib.import_module(module).main
        with pytest.raises(SystemExit):
            main(["--backend", "bridge"])  # no --bridge-url
        with pytest.raises(SystemExit):
            main(["--bridge-url", "http://x:1"])  # no --backend bridge


# --------------------------------------------------------- SQLite store
class TestSqliteRunStore:
    def test_put_get_rebinds_to_requesting_test(self, tmp_path):
        with SqliteRunStore(tmp_path / "store") as store:
            store.put("key", "O0", [_record(0, 2.5, flags={"inexact": 1}), None])
            out = store.get("key", "O0", test_id="twin")
            assert out[0].test_id == "twin" and out[0].value == 2.5
            assert out[0].flags == {"inexact": 1}
            assert out[1] is None
            assert store.get("ghost", "O0", test_id="t") is None
            assert store.stats()["misses"] == 1

    def test_survives_reopen_and_counts_disk_hits(self, tmp_path):
        with SqliteRunStore(tmp_path / "store") as store:
            store.put("key", "O0", [_record(0, 1.5)])
        with SqliteRunStore(tmp_path / "store") as reopened:
            out = reopened.get("key", "O0", test_id="fresh")
            assert out[0].value == 1.5
            assert reopened.stats()["disk_hits"] == 1

    def test_memory_lru_eviction_backed_by_shards(self, tmp_path):
        with SqliteRunStore(tmp_path / "store", max_entries=2) as store:
            for i in range(3):
                store.put(f"k{i}", "O0", [_record(0, float(i))])
            assert len(store) == 2 and store.stats()["evictions"] == 1
            # Unlike the memory-only RunStore, eviction loses nothing.
            out = store.get("k0", "O0", test_id="t")
            assert out[0].value == 0.0 and store.disk_hits == 1

    def test_concurrent_writers_first_wins(self, tmp_path):
        """Two store handles on one directory — the fleet's shape.  The
        race is safe and the first landed entry wins everywhere."""
        a = SqliteRunStore(tmp_path / "store")
        b = SqliteRunStore(tmp_path / "store")
        a.put("key", "O0", [_record(0, 1.0)])
        b.put("key", "O0", [_record(0, 2.0)])  # loses the disk race
        reader = SqliteRunStore(tmp_path / "store")
        assert reader.get("key", "O0", test_id="t")[0].value == 1.0
        for store in (a, b, reader):
            store.close()

    def test_stats_protocol_matches_runstore(self, tmp_path):
        with SqliteRunStore(tmp_path / "store") as store:
            assert set(store.stats()) == set(RunStore().stats())

    def test_migrate_jsonl_line_for_line(self, tmp_path):
        jsonl = tmp_path / "runs.jsonl"
        source = RunStore(path=jsonl)
        source.put("k0", "O0", [_record(0, 1.25, flags={"inexact": 1})])
        source.put("k1", "O3 fastmath", [_record(0, float("nan")), None])
        source.close()
        with SqliteRunStore(tmp_path / "store") as store:
            assert store.migrate_jsonl(jsonl) == 2
            assert store.migrate_jsonl(jsonl) == 0  # idempotent re-import
            assert store.total_entries() == 2
        # A migrated entry replays bit-identically through a fresh handle.
        source = RunStore(path=jsonl)
        with SqliteRunStore(tmp_path / "store") as store:
            for key, opt in (("k0", "O0"), ("k1", "O3 fastmath")):
                expected = source.get(key, opt, test_id="t")
                migrated = store.get(key, opt, test_id="t")
                assert json.dumps(
                    [None if r is None else r.printed for r in migrated]
                ) == json.dumps([None if r is None else r.printed for r in expected])
        source.close()

    def test_migrate_missing_source_is_an_error(self, tmp_path):
        with SqliteRunStore(tmp_path / "store") as store:
            with pytest.raises(HarnessError, match="no JSONL run store"):
                store.migrate_jsonl(tmp_path / "ghost.jsonl")

    def test_view_for_binds_the_content_id(self, tmp_path):
        from repro.exec import content_id_for
        from repro.varity.config import GeneratorConfig
        from repro.varity.corpus import build_corpus

        corpus = build_corpus(
            GeneratorConfig.fp32(inputs_per_program=1), 1, root_seed=5
        )
        with SqliteRunStore(tmp_path / "store") as store:
            view = store.view_for(corpus.tests[0])
            assert view.key == content_id_for(corpus.tests[0])

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SqliteRunStore(tmp_path / "s", max_entries=0)
        with pytest.raises(ValueError):
            SqliteRunStore(tmp_path / "s", shards=0)


# ------------------------------------------------------ JSONL writer lock
class TestRunStoreWriterLock:
    def test_second_writer_refused_with_the_alternative(self, tmp_path):
        path = tmp_path / "store.jsonl"
        first = RunStore(path=path)
        with pytest.raises(HarnessError, match="already open") as excinfo:
            RunStore(path=path)
        assert "SqliteRunStore" in str(excinfo.value)  # the fix is named
        first.close()
        reopened = RunStore(path=path)  # the lock dies with its holder
        reopened.close()

    def test_memory_only_stores_never_lock(self):
        a, b = RunStore(), RunStore()
        a.put("k", "O0", [_record(0, 1.0)])
        b.put("k", "O0", [_record(0, 2.0)])
