"""Edge-case tests for the interpreter and printf model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.devices.interpreter import ExecOptions, Interpreter, format_printf_g17
from repro.devices.mathlib.reference import ReferenceMath
from repro.devices.mathlib.libdevice import LibdeviceMath
from repro.devices.mathlib.ocml import OcmlMath
from repro.errors import ExecutionError
from repro.fp.types import FPType
from repro.ir.builder import IRBuilder
from repro.ir.nodes import Call, Compare, IntConst, UnOp, VarRef


def run64(body_builder, inputs, mathlib=None, **opts):
    b = IRBuilder(FPType.FP64)
    kernel = body_builder(b)
    return Interpreter(mathlib or ReferenceMath()).run(kernel, inputs, ExecOptions(**opts))


class TestPrintfModel:
    @pytest.mark.parametrize("value,expected", [
        (0.0, "0"),
        (-0.0, "-0"),
        (1.0, "1"),
        (0.1, "0.10000000000000001"),
        (1.34887e-306, "1.34887e-306"),
        (math.inf, "inf"),
        (-math.inf, "-inf"),
        (math.nan, "nan"),
        (-math.nan, "-nan"),
        (1e22, "1e+22"),
        (5e-324, "4.9406564584124654e-324"),
    ])
    def test_known_renderings(self, value, expected):
        assert format_printf_g17(value) == expected

    def test_g17_roundtrips_doubles(self):
        for v in (1/3, 2**-1074, 1.7976931348623157e308, 0.30000000000000004):
            assert float(format_printf_g17(v)) == v

    def test_fp32_values_print_as_promoted_doubles(self):
        # printf promotes float to double: %.17g of float32(0.1).
        v = float(np.float32(0.1))
        assert format_printf_g17(v) == "0.10000000149011612"


class TestInterpreterEdges:
    def test_unary_plus_is_identity(self):
        def k(b):
            return b.kernel(
                [b.fparam("comp")],
                [b.aug("comp", "+", UnOp("+", b.lit(2.0)))],
            )

        assert run64(k, [1.0]).value == 3.0

    def test_negation_of_nan_keeps_nan(self):
        def k(b):
            return b.kernel(
                [b.fparam("comp")],
                [b.aug("comp", "+", b.neg(b.div(b.raw_lit("+0.0", 0.0), b.raw_lit("+0.0", 0.0))))],
            )

        assert math.isnan(run64(k, [0.0]).value)

    def test_compare_used_as_value(self):
        # C semantics: a boolean expression in arithmetic context is 0/1.
        def k(b):
            return b.kernel(
                [b.fparam("comp")],
                [b.aug("comp", "+", Compare("<", b.lit(1.0), b.lit(2.0)))],
            )

        assert run64(k, [0.0]).value == 1.0

    def test_array_index_wraps_at_extent(self):
        # The model's allocation guard: indexes reduce modulo the extent
        # rather than faulting (generated tests never index past var_1).
        def k(b):
            return b.kernel(
                [b.fparam("comp"), b.aparam("var_2")],
                [b.aug("comp", "+", b.idx("var_2", IntConst(1000)))],
            )

        assert run64(k, [0.0, 7.0]).value == 7.0

    def test_negative_loop_bound_runs_zero_times(self):
        def k(b):
            return b.kernel(
                [b.fparam("comp"), b.iparam("var_1")],
                [b.loop("i", "var_1", [b.aug("comp", "+", b.lit(1.0))])],
            )

        assert run64(k, [5.0, -3]).value == 5.0

    def test_int_division_truncates_toward_zero(self):
        from repro.ir.nodes import BinOp

        def k(b):
            return b.kernel(
                [b.fparam("comp"), b.aparam("var_2")],
                [
                    b.aug(
                        "comp",
                        "+",
                        b.idx("var_2", BinOp("/", UnOp("-", IntConst(7)), IntConst(2))),
                    )
                ],
            )

        # -7/2 in C is -3; index -3 wraps modulo the extent (32) to 29.
        result = run64(k, [0.0, 2.5])
        assert result.value == 2.5

    def test_decl_reinitializes_each_iteration(self):
        def k(b):
            return b.kernel(
                [b.fparam("comp"), b.iparam("var_1")],
                [
                    b.loop(
                        "i",
                        "var_1",
                        [
                            b.decl("tmp_1", b.add("comp", b.lit(1.0))),
                            b.assign("comp", b.var("tmp_1")),
                        ],
                    )
                ],
            )

        # But statically tmp_1 is declared once; our validator sees the
        # loop body once, and re-execution re-evaluates the initializer.
        assert run64(k, [0.0, 4]).value == 4.0

    def test_comp_can_be_multiplied(self):
        def k(b):
            return b.kernel(
                [b.fparam("comp")],
                [b.aug("comp", "*", b.lit(3.0))],
            )

        assert run64(k, [2.0]).value == 6.0

    def test_signed_zero_propagates(self):
        def k(b):
            return b.kernel(
                [b.fparam("comp")],
                [b.aug("comp", "*", b.raw_lit("-1.0000", -1.0))],
            )

        r = run64(k, [0.0])
        assert r.value == 0.0 and math.copysign(1.0, r.value) < 0
        assert r.printed == "-0"

    def test_unknown_call_raises_execution_error(self):
        def k(b):
            return b.kernel(
                [b.fparam("comp")],
                [b.aug("comp", "+", Call("bogus", [VarRef("comp")]))],
            )

        with pytest.raises((ExecutionError, KeyError)):
            run64(k, [1.0])

    def test_steps_counted(self):
        def k(b):
            return b.kernel(
                [b.fparam("comp")],
                [b.aug("comp", "+", b.lit(1.0))],
            )

        assert run64(k, [0.0]).steps > 0


class TestVariantRouting:
    """Call.variant reaches the vendor library unchanged."""

    def _kernel(self, variant):
        b = IRBuilder(FPType.FP32)
        return b.kernel(
            [b.fparam("comp")],
            [b.aug("comp", "+", Call("cos", [VarRef("comp")], variant=variant))],
        )

    def test_default_vs_approx_differ_somewhere(self):
        lib = LibdeviceMath()
        diffs = 0
        for i in range(100):
            x = 0.5 + i * 0.01
            d = Interpreter(lib).run(self._kernel("default"), [x], ExecOptions())
            a = Interpreter(lib).run(self._kernel("approx"), [x], ExecOptions())
            diffs += d.printed != a.printed
        assert diffs > 20

    def test_hipify_variant_handled_by_ocml(self):
        lib = OcmlMath()
        # hipify variant is only *extra* for wrapped functions; cos is not
        # wrapped, so results must match default exactly.
        for i in range(50):
            x = 0.5 + i * 0.01
            d = Interpreter(lib).run(self._kernel("default"), [x], ExecOptions())
            h = Interpreter(lib).run(self._kernel("hipify"), [x], ExecOptions())
            assert d.printed == h.printed


class TestCostModelVendorDifference:
    def test_amd_calls_cost_more(self):
        from repro.devices.amd import amd_mi250x
        from repro.devices.nvidia import nvidia_v100
        from repro.compilers.nvcc import NvccCompiler
        from repro.compilers.hipcc import HipccCompiler
        from repro.compilers.options import OptLevel, OptSetting

        b = IRBuilder(FPType.FP64)
        k = b.kernel(
            [b.fparam("comp"), b.iparam("var_1")],
            [b.loop("i", "var_1", [b.aug("comp", "+", b.call("cos", "comp"))])],
        )
        p = b.program(k)
        opt = OptSetting(OptLevel.O0)
        rn = nvidia_v100().execute(NvccCompiler().compile(p, opt), [0.0, 10])
        ra = amd_mi250x().execute(HipccCompiler().compile(p, opt), [0.0, 10])
        assert ra.cost_cycles > rn.cost_cycles
