"""Tests for the ``repro-campaign`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import _config_from_args, build_parser, main


def _config(argv):
    parser = build_parser()
    return _config_from_args(parser, parser.parse_args(argv))


class TestConfigFromArgs:
    def test_defaults_are_tiny(self):
        config = _config([])
        assert config.n_programs_fp64 == 24 and config.workers == 0

    def test_overrides_apply(self):
        config = _config(["--fp64-programs", "5", "--inputs", "2", "--workers", "3"])
        assert config.n_programs_fp64 == 5
        assert config.inputs_per_program == 2
        assert config.workers == 3

    @pytest.mark.parametrize(
        "argv",
        [
            ["--fp64-programs", "0"],
            ["--fp64-programs", "-3"],
            ["--fp32-programs", "0"],
            ["--inputs", "0"],
            ["--inputs", "-1"],
            ["--workers", "-1"],
        ],
    )
    def test_non_positive_overrides_rejected(self, argv):
        """Explicit zero/negative values error out instead of being
        silently swallowed by a falsy-or fallback to the preset."""
        with pytest.raises(SystemExit):
            _config(argv)

    def test_explicit_zero_workers_honored_on_paper_scale(self):
        # `--workers 0` used to be falsy and fall back to the preset's
        # auto-sized pool; it must mean "serial".
        config = _config(["--scale", "paper", "--workers", "0"])
        assert config.workers == 0

    def test_paper_scale_auto_workers_without_override(self):
        config = _config(["--scale", "paper"])
        assert config.workers >= 1

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            _config(["--resume"])

    def test_arm_toggles(self):
        config = _config(["--no-hipify", "--no-fp32"])
        assert not config.include_hipify and not config.include_fp32


class TestMainEndToEnd:
    def test_checkpointed_run_and_resume(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        out = tmp_path / "results.json"
        argv = [
            "--fp64-programs", "4", "--fp32-programs", "4", "--inputs", "2",
            "--seed", "3", "--no-adjacency",
            "--checkpoint", str(ck), "--json", str(out),
        ]
        assert main(argv) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["nvcc_cache_hits"] > 0
        assert payload["arms"]["fp64_hipify"]["runs_by_opt"]
        # The config payload fully identifies the campaign that produced it.
        assert payload["config"] == {
            "seed": 3,
            "n_programs_fp64": 4,
            "n_programs_fp32": 4,
            "n_programs_fp16": 16,  # the tiny preset's default

            "inputs_per_program": 2,
            "include_hipify": True,
            "include_fp32": True,
            "include_fp16": False,
            "include_oracle": False,
            "stacks": ["nvcc", "hipcc"],
            "workers": 0,
        }

        # Resuming the finished campaign replays the checkpoint without
        # executing anything, and reproduces the results exactly.
        assert main(argv + ["--resume"]) == 0
        resumed = json.loads(out.read_text(encoding="utf-8"))
        assert resumed["resumed_steps"] > 0
        assert resumed["arms"] == payload["arms"]
