"""Tests for the compiler models and their passes."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.compilers.compiler import CompiledKernel
from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.compilers.options import OptLevel, OptSetting, PAPER_OPT_SETTINGS
from repro.compilers.passes.algebraic import AlgebraicSimplify
from repro.compilers.passes.approx import ApproxSubstitution
from repro.compilers.passes.constant_folding import ConstantFolding
from repro.compilers.passes.fma_contraction import (
    FMAContraction,
    HIPCC_PATTERNS,
    NVCC_PATTERNS,
)
from repro.compilers.passes.reassociation import Reassociation
from repro.compilers.passes.reciprocal import ReciprocalDivision
from repro.errors import CompileError
from repro.fp.env import FlushMode
from repro.fp.types import FPType
from repro.ir.builder import IRBuilder
from repro.ir.nodes import BinOp, Call, Const, FMA, VarRef
from repro.ir.visitor import collect, walk
from repro.varity.config import GeneratorConfig
from repro.varity.generator import ProgramGenerator


def _kernel_with_expr(b: IRBuilder, expr):
    return b.kernel(
        params=[b.fparam("comp"), b.fparam("var_2"), b.fparam("var_3"), b.fparam("var_4")],
        body=[b.aug("comp", "+", expr)],
    )


def _first_expr(kernel):
    return kernel.body[0].expr


# ----------------------------------------------------------------- options
class TestOptSetting:
    def test_labels(self):
        assert OptSetting(OptLevel.O0).label == "O0"
        assert OptSetting(OptLevel.O3, fast_math=True).label == "O3_FM"

    def test_from_label_roundtrip(self):
        for opt in PAPER_OPT_SETTINGS:
            assert OptSetting.from_label(opt.label) == opt

    def test_from_label_rejects_garbage(self):
        with pytest.raises(ValueError):
            OptSetting.from_label("O9")

    def test_paper_grid_is_the_five_settings(self):
        assert [o.label for o in PAPER_OPT_SETTINGS] == ["O0", "O1", "O2", "O3", "O3_FM"]

    def test_fast_math_flags_per_compiler(self):
        fm = OptSetting(OptLevel.O3, fast_math=True)
        assert fm.flags_for("nvcc") == ("-O3", "-use_fast_math")
        assert fm.flags_for("hipcc") == ("-O3", "-DHIP_FAST_MATH")


# ---------------------------------------------------------------- folding
class TestConstantFolding:
    def test_arithmetic_folds(self, b64):
        k = _kernel_with_expr(b64, b64.add(b64.lit(1.0), b64.lit(2.0)))
        out = ConstantFolding().run(k)
        e = _first_expr(out)
        assert isinstance(e, Const) and e.value == 3.0

    def test_folding_uses_target_precision(self, b32):
        # 1 + 2^-30 rounds away in fp32 but not fp64.
        k = _kernel_with_expr(b32, b32.add(b32.lit(1.0), b32.lit(2.0**-30)))
        e = _first_expr(ConstantFolding().run(k))
        assert isinstance(e, Const) and e.value == 1.0

    def test_unary_minus_folds(self, b64):
        k = _kernel_with_expr(b64, b64.neg(b64.lit(2.5)))
        e = _first_expr(ConstantFolding().run(k))
        assert isinstance(e, Const) and e.value == -2.5

    def test_math_calls_not_folded_by_default(self, b64):
        k = _kernel_with_expr(b64, b64.call("cos", b64.lit(2.0)))
        e = _first_expr(ConstantFolding(fold_math_calls=False).run(k))
        assert isinstance(e, Call)

    def test_math_calls_folded_when_enabled(self, b64):
        k = _kernel_with_expr(b64, b64.call("cos", b64.lit(2.0)))
        e = _first_expr(ConstantFolding(fold_math_calls=True).run(k))
        assert isinstance(e, Const) and e.value == pytest.approx(math.cos(2.0))

    def test_nonconst_untouched_and_shared(self, b64):
        k = _kernel_with_expr(b64, b64.add("var_2", "var_3"))
        assert ConstantFolding().run(k) is k

    def test_folded_inf_kept_as_constant(self, b64):
        k = _kernel_with_expr(b64, b64.mul(b64.lit(1e308), b64.lit(1e308)))
        e = _first_expr(ConstantFolding().run(k))
        assert isinstance(e, Const) and math.isinf(e.value)

    def test_division_by_zero_folds_to_inf(self, b64):
        k = _kernel_with_expr(b64, b64.div(b64.lit(1.0), b64.raw_lit("+0.0", 0.0)))
        e = _first_expr(ConstantFolding().run(k))
        assert isinstance(e, Const) and e.value == math.inf


# -------------------------------------------------------------- contraction
class TestFMAContraction:
    def test_mul_left_add_both_vendors(self, b64):
        expr = b64.add(b64.mul("var_2", "var_3"), "var_4")
        for patterns in (NVCC_PATTERNS, HIPCC_PATTERNS):
            k = _kernel_with_expr(b64, expr)
            e = _first_expr(FMAContraction(patterns).run(k))
            assert isinstance(e, FMA) and not e.negate_product

    def test_mul_right_add_nvcc_only(self, b64):
        expr = b64.add("var_4", b64.mul("var_2", "var_3"))
        k = _kernel_with_expr(b64, expr)
        assert isinstance(_first_expr(FMAContraction(NVCC_PATTERNS).run(k)), FMA)
        k2 = _kernel_with_expr(b64, expr)
        assert isinstance(_first_expr(FMAContraction(HIPCC_PATTERNS).run(k2)), BinOp)

    def test_mul_right_sub_negates_product(self, b64):
        expr = b64.sub("var_4", b64.mul("var_2", "var_3"))
        e = _first_expr(FMAContraction(NVCC_PATTERNS).run(_kernel_with_expr(b64, expr)))
        assert isinstance(e, FMA) and e.negate_product

    def test_mul_left_sub_negates_addend(self, b64):
        from repro.ir.nodes import UnOp

        expr = b64.sub(b64.mul("var_2", "var_3"), "var_4")
        e = _first_expr(FMAContraction(NVCC_PATTERNS).run(_kernel_with_expr(b64, expr)))
        assert isinstance(e, FMA) and isinstance(e.c, UnOp)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            FMAContraction(frozenset({"bogus"}))

    def test_no_mul_no_change(self, b64):
        k = _kernel_with_expr(b64, b64.add("var_2", "var_3"))
        assert FMAContraction(NVCC_PATTERNS).run(k) is k


# ------------------------------------------------------------ reassociation
class TestReassociation:
    def test_three_term_chain_rebalanced(self, b64):
        chain = b64.add(b64.add("var_2", "var_3"), "var_4")
        e = _first_expr(Reassociation().run(_kernel_with_expr(b64, chain)))
        # balanced: var_2 + (var_3 + var_4)
        assert isinstance(e, BinOp) and isinstance(e.right, BinOp)

    def test_two_term_chain_untouched(self, b64):
        k = _kernel_with_expr(b64, b64.add("var_2", "var_3"))
        assert Reassociation().run(k) is k

    def test_mixed_operators_not_merged(self, b64):
        k = _kernel_with_expr(b64, b64.add(b64.sub("var_2", "var_3"), "var_4"))
        # only 2 terms at the + level: (var_2-var_3) and var_4
        assert Reassociation().run(k) is k

    def test_changes_rounding(self, b64, nvidia_device, nvcc):
        """Reassociation must be value-unsafe (that is its purpose)."""
        # (big + tiny) + (-big): left-assoc loses tiny, balanced keeps it.
        chain = b64.add(b64.add(b64.lit(1.0e16), b64.lit(1.0)), b64.lit(-1.0e16))
        k = _kernel_with_expr(b64, chain)
        k2 = Reassociation().run(k)
        assert k2 is not k


# ---------------------------------------------------------------- reciprocal
class TestReciprocal:
    def test_const_divisor_rewritten(self, b64):
        k = _kernel_with_expr(b64, b64.div("var_2", b64.lit(3.0)))
        e = _first_expr(ReciprocalDivision().run(k))
        assert isinstance(e, BinOp) and e.op == "*"
        assert isinstance(e.right, Const)
        assert e.right.value == pytest.approx(1.0 / 3.0)

    def test_variable_divisor_kept(self, b64):
        k = _kernel_with_expr(b64, b64.div("var_2", "var_3"))
        assert ReciprocalDivision().run(k) is k

    def test_zero_divisor_kept(self, b64):
        k = _kernel_with_expr(b64, b64.div("var_2", b64.raw_lit("+0.0", 0.0)))
        assert ReciprocalDivision().run(k) is k

    def test_subnormal_divisor_gives_inf_multiplier(self, b64):
        k = _kernel_with_expr(b64, b64.div("var_2", b64.lit(1.0e-310)))
        e = _first_expr(ReciprocalDivision().run(k))
        assert isinstance(e.right, Const) and math.isinf(e.right.value)

    def test_fp32_reciprocal_precision(self, b32):
        k = _kernel_with_expr(b32, b32.div("var_2", b32.lit(3.0)))
        e = _first_expr(ReciprocalDivision().run(k))
        assert e.right.value == float(np.float32(1.0) / np.float32(3.0))


# ----------------------------------------------------------------- algebraic
class TestAlgebraic:
    def test_mul_zero(self, b64):
        k = _kernel_with_expr(b64, b64.mul("var_2", b64.raw_lit("+0.0", 0.0)))
        e = _first_expr(AlgebraicSimplify().run(k))
        assert isinstance(e, Const) and e.value == 0.0

    def test_sub_self(self, b64):
        k = _kernel_with_expr(b64, b64.sub("var_2", "var_2"))
        e = _first_expr(AlgebraicSimplify().run(k))
        assert isinstance(e, Const) and e.value == 0.0

    def test_add_zero(self, b64):
        k = _kernel_with_expr(b64, b64.add("var_2", b64.raw_lit("+0.0", 0.0)))
        e = _first_expr(AlgebraicSimplify().run(k))
        assert e == VarRef("var_2")

    def test_mul_one(self, b64):
        k = _kernel_with_expr(b64, b64.mul(b64.lit(1.0), b64.var("var_2")))
        assert _first_expr(AlgebraicSimplify().run(k)) == VarRef("var_2")

    def test_div_one(self, b64):
        k = _kernel_with_expr(b64, b64.div("var_2", b64.lit(1.0)))
        assert _first_expr(AlgebraicSimplify().run(k)) == VarRef("var_2")

    def test_different_vars_not_cancelled(self, b64):
        k = _kernel_with_expr(b64, b64.sub("var_2", "var_3"))
        assert AlgebraicSimplify().run(k) is k


# -------------------------------------------------------------------- approx
class TestApproxSubstitution:
    def test_fp64_untouched(self, b64):
        k = _kernel_with_expr(b64, b64.call("cos", "var_2"))
        assert ApproxSubstitution(rewrite_division=True).run(k) is k

    def test_fp32_call_variant(self, b32):
        k = _kernel_with_expr(b32, b32.call("cos", "var_2"))
        e = _first_expr(ApproxSubstitution(rewrite_division=False).run(k))
        assert isinstance(e, Call) and e.variant == "approx"

    def test_fp32_division_rewritten_when_enabled(self, b32):
        k = _kernel_with_expr(b32, b32.div("var_2", "var_3"))
        e = _first_expr(ApproxSubstitution(rewrite_division=True).run(k))
        assert isinstance(e, Call) and e.func == "__fdividef"

    def test_fp32_division_kept_when_disabled(self, b32):
        k = _kernel_with_expr(b32, b32.div("var_2", "var_3"))
        assert ApproxSubstitution(rewrite_division=False).run(k) is k

    def test_non_approx_capable_untouched(self, b32):
        k = _kernel_with_expr(b32, b32.call("fmod", "var_2", "var_3"))
        assert ApproxSubstitution(rewrite_division=False).run(k) is k


# ----------------------------------------------------------------- drivers
class TestCompilerDrivers:
    def test_o0_is_identity(self, b64, nvcc, hipcc):
        p = b64.program(_kernel_with_expr(b64, b64.add("var_2", "var_3")))
        for compiler in (nvcc, hipcc):
            ck = compiler.compile(p, OptSetting(OptLevel.O0))
            assert ck.kernel is p.kernel
            assert ck.passes_applied == ()

    def test_o1_o2_o3_identical_pipelines(self, nvcc, hipcc):
        """The paper's O1/O2/O3 rows are identical; the models make it exact."""
        gen = ProgramGenerator(GeneratorConfig.fp64())
        for seed in range(10):
            p = gen.generate(seed)
            for compiler in (nvcc, hipcc):
                kernels = [
                    compiler.compile(p, OptSetting(OptLevel(level))).kernel
                    for level in (1, 2, 3)
                ]
                assert kernels[0] == kernels[1] == kernels[2]

    def test_compiled_kernel_metadata(self, b64, nvcc):
        p = b64.program(_kernel_with_expr(b64, b64.add(b64.lit(1.0), b64.lit(2.0))))
        ck = nvcc.compile(p, OptSetting(OptLevel.O2))
        assert isinstance(ck, CompiledKernel)
        assert ck.vendor.value == "nvidia"
        assert "const-fold+libm" in ck.passes_applied
        assert ck.label == "nvcc -O2"

    def test_vendor_mismatch_rejected_at_execute(self, b64, nvcc, amd_device):
        p = b64.program(_kernel_with_expr(b64, b64.add("var_2", "var_3")))
        ck = nvcc.compile(p, OptSetting(OptLevel.O0))
        with pytest.raises(ValueError):
            amd_device.execute(ck, [0.0, 1.0, 2.0, 3.0])

    def test_malformed_program_rejected(self, b64, nvcc):
        bad = b64.program(
            b64.kernel([b64.fparam("comp")], [b64.aug("comp", "+", b64.var("ghost"))])
        )
        with pytest.raises(CompileError):
            nvcc.compile(bad, OptSetting(OptLevel.O0))

    def test_ftz_modes(self, nvcc, hipcc):
        fm = OptSetting(OptLevel.O3, fast_math=True)
        assert nvcc.flush_mode(fm, FPType.FP32) is FlushMode.FLUSH_INPUTS_OUTPUTS
        assert hipcc.flush_mode(fm, FPType.FP32) is FlushMode.FLUSH_OUTPUTS
        assert nvcc.flush_mode(fm, FPType.FP64) is FlushMode.NONE
        assert hipcc.flush_mode(OptSetting(OptLevel.O3), FPType.FP32) is FlushMode.NONE

    def test_hipify_marking_only_for_converted_programs(self, b64, hipcc):
        p = b64.program(_kernel_with_expr(b64, b64.call("fmod", "var_2", "var_3")))
        plain = hipcc.compile(p, OptSetting(OptLevel.O0))
        calls = [
            n for stmt in plain.kernel.body for n in walk(stmt) if isinstance(n, Call)
        ]
        assert calls[0].variant == "default"

        converted = hipcc.compile(p.marked_hipify(), OptSetting(OptLevel.O0))
        calls = [
            n for stmt in converted.kernel.body for n in walk(stmt) if isinstance(n, Call)
        ]
        assert calls[0].variant == "hipify"

    def test_hipify_marking_limited_to_wrapped_set(self, b64, hipcc):
        p = b64.program(_kernel_with_expr(b64, b64.call("sqrt", "var_2")))
        converted = hipcc.compile(p.marked_hipify(), OptSetting(OptLevel.O0))
        calls = [
            n for stmt in converted.kernel.body for n in walk(stmt) if isinstance(n, Call)
        ]
        assert calls[0].variant == "default"  # sqrt is not wrapped

    def test_compile_does_not_mutate_program(self, nvcc, hipcc):
        gen = ProgramGenerator(GeneratorConfig.fp64())
        p = gen.generate(17)
        snapshot = p.kernel
        for compiler in (nvcc, hipcc):
            for opt in PAPER_OPT_SETTINGS:
                compiler.compile(p, opt)
        assert p.kernel is snapshot

    def test_semantic_preservation_of_safe_passes(self, nvcc, nvidia_device):
        """O2 (folding + contraction only) must keep exceptional classes and
        stay within rounding distance for a straight-line kernel."""
        b = IRBuilder(FPType.FP64)
        k = b.kernel(
            params=[b.fparam("comp"), b.fparam("var_2"), b.fparam("var_3")],
            body=[
                b.aug("comp", "+", b.add(b.mul("var_2", "var_3"), b.lit(1.0))),
                b.aug("comp", "*", b.add(b.lit(0.5), b.lit(0.25))),
            ],
        )
        p = b.program(k)
        r0 = nvidia_device.execute(nvcc.compile(p, OptSetting(OptLevel.O0)), [1.0, 3.0, 7.0])
        r2 = nvidia_device.execute(nvcc.compile(p, OptSetting(OptLevel.O2)), [1.0, 3.0, 7.0])
        assert r0.value == pytest.approx(r2.value, rel=1e-15)
