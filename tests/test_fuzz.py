"""Tests for the feedback-guided fuzzing subsystem (repro.fuzz).

The contracts pinned down here are the ones the ledger format and the
acceptance criteria depend on: mutator determinism (same seed → identical
mutant) and validity (every produced mutant passes ``validate_kernel``),
signature dedup, byte-identical ledgers for repeated seeded sessions, and
resume equivalence (interrupt, resume, identical findings set).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import HarnessError
from repro.fuzz.engine import FuzzConfig, run_fuzz, run_random_session
from repro.fuzz.ledger import FindingsLedger, LineageStep
from repro.fuzz.mutators import MUTATION_NAMES, apply_mutation
from repro.fuzz.signature import DiscrepancySignature, signature_histogram
from repro.ir.printer import print_ir
from repro.ir.validate import validate_kernel
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus

#: One small, fast session config shared by the engine tests.
TINY = FuzzConfig(
    seed=11,
    n_seed_programs=15,
    inputs_per_program=2,
    max_mutants=30,
    batch_size=10,
    minimize=False,
)


@pytest.fixture(scope="module")
def fuzz_corpus():
    cfg = GeneratorConfig.fp32(inputs_per_program=2)
    return build_corpus(cfg, 20, root_seed=77)


class TestMutators:
    def test_registry_has_all_seven_classes(self):
        assert set(MUTATION_NAMES) == {
            "op-swap",
            "const-perturb",
            "call-mutate",
            "fma-shape",
            "splice",
            "guard-toggle",
            "precision-cast",
        }

    @pytest.mark.parametrize("mutation", MUTATION_NAMES)
    def test_deterministic(self, fuzz_corpus, mutation):
        """Same (seed, mutation_id) → structurally identical mutant."""
        donor = fuzz_corpus.tests[1].program.kernel
        for test in fuzz_corpus.tests[:8]:
            kernel = test.program.kernel
            a = apply_mutation(kernel, mutation, seed=123, donor=donor)
            b = apply_mutation(kernel, mutation, seed=123, donor=donor)
            if a is None:
                assert b is None
                continue
            assert print_ir(a) == print_ir(b)

    @pytest.mark.parametrize("mutation", MUTATION_NAMES)
    def test_seed_changes_mutant(self, fuzz_corpus, mutation):
        """Different seeds explore different sites (on at least one test)."""
        donor = fuzz_corpus.tests[2].program.kernel
        differs = False
        for test in fuzz_corpus.tests[:10]:
            kernel = test.program.kernel
            a = apply_mutation(kernel, mutation, seed=1, donor=donor)
            b = apply_mutation(kernel, mutation, seed=2, donor=donor)
            if a is not None and b is not None and print_ir(a) != print_ir(b):
                differs = True
                break
        assert differs, f"{mutation} ignored its seed on every test"

    @pytest.mark.parametrize("mutation", MUTATION_NAMES)
    def test_validity_preserved(self, fuzz_corpus, mutation):
        """Every mutant over many (test, seed) pairs passes validation."""
        donor = fuzz_corpus.tests[0].program.kernel
        produced = 0
        for test in fuzz_corpus.tests:
            for seed in range(5):
                mutant = apply_mutation(
                    test.program.kernel, mutation, seed=seed, donor=donor
                )
                if mutant is None:
                    continue
                produced += 1
                issues = validate_kernel(mutant)
                assert not issues, (
                    f"{mutation} produced invalid kernel: {issues[0]}"
                )
                # Signature must be untouched: parent inputs stay usable.
                assert mutant.params == test.program.kernel.params
        assert produced > 0, f"{mutation} never applied"

    def test_splice_requires_donor(self, fuzz_corpus):
        kernel = fuzz_corpus.tests[0].program.kernel
        assert apply_mutation(kernel, "splice", seed=5, donor=None) is None

    def test_precision_cast_wraps_demote(self, fuzz_corpus):
        """The precision-cast mutant carries a __demote_fp16 wrapper."""
        from repro.devices.mathlib.base import DEMOTE_FP16
        from repro.ir.nodes import Call
        from repro.ir.visitor import collect

        wrapped = 0
        for test in fuzz_corpus.tests[:10]:
            mutant = apply_mutation(test.program.kernel, "precision-cast", seed=9)
            if mutant is None:
                continue
            demotes = [
                n
                for stmt in mutant.body
                for n in collect(stmt, lambda n: isinstance(n, Call) and n.func == DEMOTE_FP16)
            ]
            assert len(demotes) == 1
            wrapped += 1
        assert wrapped > 0

    def test_precision_cast_noop_on_fp16_kernels(self):
        from repro.varity.config import GeneratorConfig as GC

        corpus16 = build_corpus(GC.fp16(inputs_per_program=2), 4, root_seed=5)
        for test in corpus16.tests:
            assert apply_mutation(test.program.kernel, "precision-cast", seed=1) is None

    def test_precision_cast_changes_interpreted_value(self, fuzz_corpus):
        """The round trip really coarsens: some mutant prints a different
        value than its parent on the same inputs."""
        from repro.compilers.options import OptSetting
        from repro.harness.runner import DifferentialRunner

        runner = DifferentialRunner()
        opt = OptSetting.from_label("O0")
        changed = False
        for test in fuzz_corpus.tests:
            mutant_kernel = apply_mutation(test.program.kernel, "precision-cast", seed=3)
            if mutant_kernel is None:
                continue
            mutant = dataclasses.replace(
                test,
                program=dataclasses.replace(test.program, kernel=mutant_kernel),
            )
            for index in range(len(test.inputs)):
                a, _, _, _ = runner.run_single(test, opt, index)
                b, _, _, _ = runner.run_single(mutant, opt, index)
                if a.printed != b.printed:
                    changed = True
                    break
            if changed:
                break
        assert changed, "precision-cast never changed an interpreted value"

    def test_unknown_mutation_rejected(self, fuzz_corpus):
        with pytest.raises(ValueError):
            apply_mutation(fuzz_corpus.tests[0].program.kernel, "rot13", seed=1)

    def test_const_perturb_roundtrips_text(self, fuzz_corpus):
        """Perturbed literals carry text that parses back to their value."""
        from repro.ir.nodes import Const
        from repro.ir.visitor import collect

        for test in fuzz_corpus.tests:
            mutant = apply_mutation(test.program.kernel, "const-perturb", seed=3)
            if mutant is None:
                continue
            for stmt in mutant.body:
                for node in collect(stmt, lambda n: isinstance(n, Const)):
                    if node.text is not None:
                        assert float(node.text.rstrip("Ff")) == node.value
            return
        pytest.skip("no test had a literal to perturb")


class TestSignature:
    def _sig(self, **overrides) -> DiscrepancySignature:
        base = dict(
            cause="math-library",
            functions=("fmod",),
            opt_label="O0",
            nvcc_outcome="Num",
            hipcc_outcome="NaN",
            fptype="fp32",
        )
        base.update(overrides)
        return DiscrepancySignature(**base)

    def test_key_roundtrip(self):
        sig = self._sig()
        assert DiscrepancySignature.from_json_dict(sig.to_json_dict()) == sig

    def test_dedup_by_equality(self):
        assert self._sig() == self._sig()
        assert len({self._sig(), self._sig()}) == 1
        assert self._sig() != self._sig(opt_label="O3")
        assert self._sig().key != self._sig(hipcc_outcome="Inf").key

    def test_directional_outcomes(self):
        a = self._sig(nvcc_outcome="Num", hipcc_outcome="NaN")
        b = self._sig(nvcc_outcome="NaN", hipcc_outcome="Num")
        assert a.key != b.key

    def test_histogram_renders(self):
        table = signature_histogram([self._sig(), self._sig(opt_label="O3")])
        text = table.render()
        assert "math-library" in text and "fmod" in text


class TestEngine:
    @pytest.fixture(scope="class")
    def session(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "ledger.jsonl"
        result = run_fuzz(TINY, ledger=path)
        return result, path

    def test_budget_respected(self, session):
        result, _ = session
        assert result.iterations == TINY.max_mutants
        attempts = (
            result.mutants_run
            + result.fresh_explored
            + result.mutants_no_site
            + result.mutants_invalid
            + result.mutants_noop
            + result.duplicates
        )
        assert attempts == result.iterations

    def test_signature_dedup_across_findings(self, session):
        result, _ = session
        keys = [f.signature.key for f in result.findings]
        assert len(keys) == len(set(keys))
        # Nothing from the baseline may be reported as novel.
        baseline = {s.key for s in result.baseline_signatures}
        assert not baseline.intersection(keys)

    def test_hipify_twin_served_from_cache(self, session):
        result, _ = session
        # Every evaluated program's twin replays the CUDA half: hit count
        # equals execution count exactly (same sweeps, zero extra).
        assert result.nvcc_cache_hits == result.nvcc_executions
        assert result.cache_hit_rate == pytest.approx(0.5)

    def test_ledger_structure(self, session):
        result, path = session
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        assert lines[0]["fingerprint"] == TINY.fingerprint()
        assert lines[1]["kind"] == "baseline"
        batches = [l for l in lines if l["kind"] == "batch"]
        assert batches[-1]["stop"] == TINY.max_mutants
        ledger_findings = [f for b in batches for f in b["findings"]]
        assert len(ledger_findings) == len(result.findings)

    def test_rerun_is_byte_identical(self, session, tmp_path):
        _, path = session
        again = tmp_path / "again.jsonl"
        run_fuzz(TINY, ledger=again)
        assert again.read_bytes() == path.read_bytes()

    def test_finding_lineage_replays(self, session):
        from repro.fuzz.engine import _LazyCorpus, _replay_lineage

        result, _ = session
        if not result.findings:
            pytest.skip("no findings at this scale")
        corpus = _LazyCorpus(TINY)
        f = result.findings[0]
        kernel = _replay_lineage(corpus, f.corpus_index, f.lineage)
        assert not validate_kernel(kernel)

    def test_resume_completed_session_is_noop(self, session, tmp_path):
        result, path = session
        resumed = run_fuzz(TINY, ledger=path, resume=True)
        assert resumed.resumed_iterations == TINY.max_mutants
        assert resumed.mutants_run == 0
        assert [f.signature.key for f in resumed.findings] == [
            f.signature.key for f in result.findings
        ]

    def test_interrupted_resume_reproduces_straight_run(self, session, tmp_path):
        """Interrupt mid-session, resume: identical findings set."""
        straight, _ = session
        path = tmp_path / "interrupted.jsonl"
        run_fuzz(dataclasses.replace(TINY, max_mutants=20), ledger=path)
        resumed = run_fuzz(TINY, ledger=path, resume=True)
        assert resumed.resumed_iterations == 20
        key = lambda f: (f.iteration, f.arm, f.mutant_id, f.signature.key)
        assert [key(f) for f in resumed.findings] == [key(f) for f in straight.findings]

    def test_resume_refuses_mismatched_config(self, session, tmp_path):
        _, path = session
        other = dataclasses.replace(TINY, seed=999)
        with pytest.raises(HarnessError):
            run_fuzz(other, ledger=path, resume=True)
        # "auto" falls back to a fresh session instead.
        fresh = run_fuzz(
            dataclasses.replace(other, max_mutants=0),
            ledger=tmp_path / "auto.jsonl",
            resume="auto",
        )
        assert fresh.resumed_iterations == 0

    def test_resume_without_ledger_rejected(self):
        with pytest.raises(HarnessError):
            run_fuzz(TINY, resume=True)

    def test_wall_clock_budget_stops_early(self, tmp_path):
        config = dataclasses.replace(TINY, max_mutants=10_000, max_seconds=0.0)
        result = run_fuzz(config)
        assert result.stopped_by == "wall-clock"
        assert result.iterations < 10_000

    def test_random_session_uses_fresh_programs(self):
        result = run_random_session(TINY, n_programs=3)
        assert result.n_programs == 3
        assert result.pair_runs > 0


class TestLedgerRobustness:
    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        run_fuzz(dataclasses.replace(TINY, max_mutants=10), ledger=path)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "batch", "index": 99, "start"')  # killed mid-write
        resumed = run_fuzz(TINY, ledger=path, resume=True)
        assert resumed.resumed_iterations == 10
        assert resumed.iterations == TINY.max_mutants

    def test_headerless_ledger_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "batch"}\n', encoding="utf-8")
        with pytest.raises(HarnessError):
            FindingsLedger(path).load(TINY.fingerprint())

    def test_lineage_step_roundtrip(self):
        for step in (LineageStep("op-swap", 42), LineageStep("splice", 7, 3)):
            assert LineageStep.from_json(step.to_json()) == step


class TestOracleMode:
    """Fuzzing with metamorphic-oracle relations (ledger format 3)."""

    ORACLE = dataclasses.replace(
        TINY, max_mutants=20, oracle_relations=("fastmath-flag", "mul-one")
    )

    @pytest.fixture(scope="class")
    def oracle_session(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz-oracle") / "ledger.jsonl"
        result = run_fuzz(self.ORACLE, ledger=path)
        return result, path

    def test_fingerprint_format_gated_on_oracle(self):
        """Non-oracle configs fingerprint exactly as format 2 — no oracle
        keys — which is the whole compatibility story."""
        plain = TINY.fingerprint()
        assert plain["format"] == 2
        assert "oracle_relations" not in plain
        assert "oracle_ulp_bound" not in plain
        with_oracle = self.ORACLE.fingerprint()
        assert with_oracle["format"] == 3
        assert with_oracle["oracle_relations"] == ["fastmath-flag", "mul-one"]
        # Apart from max_mutants (a budget, never fingerprinted) the two
        # configs differ only in the oracle fields, so every shared key
        # must carry the same value.
        for key, value in plain.items():
            if key != "format":
                assert with_oracle[key] == value

    def test_format2_ledger_still_resumes(self, tmp_path):
        """A ledger written by a non-oracle (format-2) config resumes
        under the same non-oracle config after the oracle lane landed."""
        path = tmp_path / "fmt2.jsonl"
        first = run_fuzz(TINY, ledger=path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["fingerprint"]["format"] == 2
        resumed = run_fuzz(TINY, ledger=path, resume=True)
        assert resumed.resumed_iterations == TINY.max_mutants
        assert {f.signature.key for f in resumed.findings} == {
            f.signature.key for f in first.findings
        }

    def test_format2_ledger_refused_by_oracle_config(self, tmp_path):
        """An oracle config cannot continue a format-2 trajectory (its
        scheduler would disagree); strict resume reports the mismatch."""
        path = tmp_path / "fmt2.jsonl"
        run_fuzz(dataclasses.replace(TINY, max_mutants=5), ledger=path)
        with pytest.raises(HarnessError):
            run_fuzz(
                dataclasses.replace(self.ORACLE, max_mutants=10),
                ledger=path,
                resume=True,
            )

    def test_oracle_violations_become_findings(self, oracle_session):
        result, _ = oracle_session
        assert result.oracle_violations > 0
        oracle_findings = [f for f in result.findings if f.arm == "oracle"]
        assert oracle_findings, "no oracle-cause finding surfaced"
        for f in oracle_findings:
            assert f.signature.cause.startswith("oracle:")
            # single-stack verdicts: the implicated platform rides in the
            # functions slot, and the differential reducer never ran.
            assert f.signature.functions[0] in ("nvcc", "hipcc")
            assert f.reduced_size is None

    def test_oracle_ledger_rerun_byte_identical(self, oracle_session, tmp_path):
        _, path = oracle_session
        again = tmp_path / "again.jsonl"
        run_fuzz(self.ORACLE, ledger=again)
        assert again.read_bytes() == path.read_bytes()

    def test_oracle_ledger_worker_invariant(self, oracle_session, tmp_path):
        _, path = oracle_session
        pooled = tmp_path / "pooled.jsonl"
        run_fuzz(dataclasses.replace(self.ORACLE, workers=2), ledger=pooled)
        assert pooled.read_bytes() == path.read_bytes()

    def test_oracle_resume_matches_straight_run(self, oracle_session, tmp_path):
        """Interrupt mid-session, resume: identical findings trajectory
        (batch boundaries differ at the interruption point, as for any
        interrupted fuzz session, so compare findings, not bytes)."""
        straight, _ = oracle_session
        split = tmp_path / "split.jsonl"
        run_fuzz(dataclasses.replace(self.ORACLE, max_mutants=8), ledger=split)
        resumed = run_fuzz(self.ORACLE, ledger=split, resume=True)
        assert resumed.resumed_iterations == 8
        key = lambda f: (f.iteration, f.arm, f.mutant_id, f.signature.key)
        assert [key(f) for f in resumed.findings] == [
            key(f) for f in straight.findings
        ]

    def test_unknown_relation_rejected(self):
        with pytest.raises(HarnessError):
            FuzzConfig(oracle_relations=("no-such-relation",))
