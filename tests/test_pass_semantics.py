"""Semantic contracts of the optimization passes, over generated programs.

Each pass has a precise contract: arithmetic constant folding is
*value-preserving* (same rounding as the device), reassociation preserves
the term multiset, reciprocal substitution is exact for power-of-two
divisors, contraction is strictly more aggressive on nvcc than hipcc.
These tests check the contracts on whole random programs, not toy
expressions.
"""

from __future__ import annotations

import math

import pytest

from repro.compilers.passes.constant_folding import ConstantFolding
from repro.compilers.passes.fma_contraction import (
    FMAContraction,
    HIPCC_PATTERNS,
    NVCC_PATTERNS,
)
from repro.compilers.passes.reassociation import Reassociation, _collect_chain
from repro.compilers.passes.reciprocal import ReciprocalDivision
from repro.devices.interpreter import ExecOptions, Interpreter
from repro.devices.mathlib.libdevice import LibdeviceMath
from repro.errors import TrapError
from repro.fp.types import FPType
from repro.ir.builder import IRBuilder
from repro.ir.nodes import BinOp, Const, FMA, VarRef
from repro.ir.validate import validate_kernel
from repro.ir.visitor import collect, walk
from repro.varity.config import GeneratorConfig
from repro.varity.generator import ProgramGenerator
from repro.varity.inputs import InputGenerator

SEEDS = list(range(20))


def _run(kernel, inputs):
    return Interpreter(LibdeviceMath()).run(kernel, inputs, ExecOptions())


@pytest.fixture(scope="module")
def programs_with_inputs():
    cfg = GeneratorConfig.fp64()
    gen = ProgramGenerator(cfg)
    igen = InputGenerator(cfg)
    out = []
    for seed in SEEDS:
        p = gen.generate(seed)
        vec = igen.generate(p.kernel, seed + 1)
        out.append((p, vec))
    return out


class TestArithmeticFoldingPreservesValues:
    def test_identical_results(self, programs_with_inputs):
        fold = ConstantFolding(fold_math_calls=False)
        for program, vec in programs_with_inputs:
            folded = fold.run(program.kernel)
            try:
                before = _run(program.kernel, vec.values)
                after = _run(folded, vec.values)
            except TrapError:
                continue
            assert before.printed == after.printed, program.program_id

    def test_folded_kernels_valid(self, programs_with_inputs):
        fold = ConstantFolding(fold_math_calls=True)
        for program, _ in programs_with_inputs:
            assert validate_kernel(fold.run(program.kernel)) == []

    def test_folding_reduces_or_keeps_size(self, programs_with_inputs):
        fold = ConstantFolding(fold_math_calls=True)
        for program, _ in programs_with_inputs:
            before = sum(1 for s in program.kernel.body for _ in walk(s))
            after = sum(1 for s in fold.run(program.kernel).body for _ in walk(s))
            assert after <= before

    def test_idempotent(self, programs_with_inputs):
        fold = ConstantFolding(fold_math_calls=True)
        for program, _ in programs_with_inputs:
            once = fold.run(program.kernel)
            twice = fold.run(once)
            assert once == twice


class TestReassociationContract:
    def test_term_multisets_preserved(self, programs_with_inputs):
        reassoc = Reassociation()
        for program, _ in programs_with_inputs:
            before = program.kernel
            after = reassoc.run(before)
            if after is before:
                continue
            # Every *maximal* +/* chain in the output has the same term
            # multiset as the corresponding input chain (association may
            # change, membership may not).  Terms are compared by their
            # printed form: a term may itself contain a rebalanced nested
            # chain, which printing (association-insensitive for + and *)
            # deliberately ignores.
            from repro.ir.printer import expr_to_str

            def maximal_chains(expr, out):
                if isinstance(expr, BinOp) and expr.op in ("+", "*"):
                    terms = []
                    _collect_chain(expr, expr.op, terms)
                    if len(terms) >= 3:
                        out.append(sorted(expr_to_str(t) for t in terms))
                    for t in terms:
                        maximal_chains(t, out)
                else:
                    for child in expr.children():
                        maximal_chains(child, out)

            def chain_signatures(kernel):
                sigs = []
                for stmt in kernel.body:
                    for node in stmt.children():
                        maximal_chains(node, sigs)
                return sorted(map(tuple, sigs))

            assert chain_signatures(before) == chain_signatures(after)

    def test_valid_after(self, programs_with_inputs):
        reassoc = Reassociation()
        for program, _ in programs_with_inputs:
            assert validate_kernel(reassoc.run(program.kernel)) == []


class TestReciprocalContract:
    def test_power_of_two_divisors_exact(self):
        b = IRBuilder(FPType.FP64)
        for c in (2.0, 0.5, 4.0, 1024.0, 2.0**-30):
            k = b.kernel(
                [b.fparam("comp"), b.fparam("var_2")],
                [b.aug("comp", "+", b.div("var_2", Const(c, None)))],
            )
            rewritten = ReciprocalDivision().run(k)
            for x in (3.7, -1.1e300, 5e-310, 0.3333333333333333):
                before = _run(k, [0.0, x])
                after = _run(rewritten, [0.0, x])
                assert before.printed == after.printed

    def test_general_divisor_within_one_ulp(self):
        from repro.fp.ulp import ulp_distance

        b = IRBuilder(FPType.FP64)
        k = b.kernel(
            [b.fparam("comp"), b.fparam("var_2")],
            [b.aug("comp", "+", b.div("var_2", b.lit(3.0)))],
        )
        rewritten = ReciprocalDivision().run(k)
        for i in range(50):
            x = 0.1 + i * 0.37
            before = _run(k, [0.0, x]).value
            after = _run(rewritten, [0.0, x]).value
            assert ulp_distance(before, after) <= 1

    def test_valid_after(self, programs_with_inputs):
        recip = ReciprocalDivision()
        for program, _ in programs_with_inputs:
            assert validate_kernel(recip.run(program.kernel)) == []


class TestContractionContract:
    def test_nvcc_contracts_superset(self, programs_with_inputs):
        """Every FMA hipcc produces, nvcc produces too (pattern subset)."""
        nv = FMAContraction(NVCC_PATTERNS)
        hip = FMAContraction(HIPCC_PATTERNS)
        for program, _ in programs_with_inputs:
            n_nv = sum(
                1 for s in nv.run(program.kernel).body
                for n in walk(s) if isinstance(n, FMA)
            )
            n_hip = sum(
                1 for s in hip.run(program.kernel).body
                for n in walk(s) if isinstance(n, FMA)
            )
            assert n_nv >= n_hip

    def test_contraction_matches_fused_semantics(self):
        """fma(a,b,c) node evaluates to the correctly rounded a*b+c."""
        from repro.devices.interpreter import fma_exact

        b = IRBuilder(FPType.FP64)
        k = b.kernel(
            [b.fparam("comp"), b.fparam("var_2"), b.fparam("var_3"), b.fparam("var_4")],
            [b.aug("comp", "+", b.add(b.mul("var_2", "var_3"), "var_4"))],
        )
        contracted = FMAContraction(NVCC_PATTERNS).run(k)
        cases = [
            (1.0 + 2.0**-30, 1.0 - 2.0**-30, -1.0),
            (1.5e154, 1.4e154, -1.7e308),
            (3.0, 7.0, 0.1),
        ]
        for a, bb, c in cases:
            result = _run(contracted, [0.0, a, bb, c]).value
            assert result == fma_exact(a, bb, c)

    def test_valid_after(self, programs_with_inputs):
        for patterns in (NVCC_PATTERNS, HIPCC_PATTERNS):
            contract = FMAContraction(patterns)
            for program, _ in programs_with_inputs:
                assert validate_kernel(contract.run(program.kernel)) == []
