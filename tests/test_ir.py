"""Tests for the IR (nodes, visitors, printer, builder, validation, metrics)."""

from __future__ import annotations

import math

import pytest

from repro.fp.types import FPType
from repro.ir.builder import IRBuilder
from repro.ir.metrics import aggregate_metrics, compute_metrics
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Decl,
    FMA,
    For,
    If,
    IntConst,
    UnOp,
    VarRef,
    structurally_equal,
)
from repro.ir.printer import expr_to_str, print_ir
from repro.ir.program import Kernel, Param, Program
from repro.ir.types import IRType
from repro.ir.validate import validate_kernel
from repro.ir.visitor import Transformer, Visitor, collect, walk


# ------------------------------------------------------------------- nodes
class TestNodeConstruction:
    def test_binop_validates_operator(self):
        with pytest.raises(ValueError):
            BinOp("%", Const(1.0), Const(2.0))

    def test_unop_validates_operator(self):
        with pytest.raises(ValueError):
            UnOp("!", Const(1.0))

    def test_compare_validates_operator(self):
        with pytest.raises(ValueError):
            Compare("<>", Const(1.0), Const(2.0))

    def test_boolop_validates_operator(self):
        with pytest.raises(ValueError):
            BoolOp("and", Compare("<", Const(1.0), Const(2.0)), Compare("<", Const(1.0), Const(2.0)))

    def test_augassign_validates_operator(self):
        with pytest.raises(ValueError):
            AugAssign(VarRef("comp"), "%", Const(1.0))

    def test_call_args_become_tuple(self):
        c = Call("cos", [Const(1.0)])
        assert isinstance(c.args, tuple)

    def test_for_body_becomes_tuple(self):
        f = For("i", VarRef("var_1"), [AugAssign(VarRef("comp"), "+", Const(1.0))])
        assert isinstance(f.body, tuple)

    def test_children_order(self):
        e = BinOp("+", VarRef("a"), VarRef("b"))
        assert [c.name for c in e.children()] == ["a", "b"]


class TestStructuralEquality:
    def test_equal_trees(self):
        a = BinOp("+", Const(1.0), VarRef("x"))
        b = BinOp("+", Const(1.0), VarRef("x"))
        assert a == b and hash(a) == hash(b)

    def test_different_ops(self):
        assert BinOp("+", Const(1.0), Const(2.0)) != BinOp("-", Const(1.0), Const(2.0))

    def test_signed_zero_constants_differ(self):
        assert Const(0.0) != Const(-0.0)

    def test_nan_constant_equals_itself(self):
        assert Const(math.nan) == Const(math.nan)

    def test_call_variant_matters(self):
        a = Call("cos", [VarRef("x")])
        b = Call("cos", [VarRef("x")], variant="approx")
        assert a != b

    def test_fma_negate_matters(self):
        args = (VarRef("a"), VarRef("b"), VarRef("c"))
        assert FMA(*args) != FMA(*args, negate_product=True)

    def test_not_equal_to_non_node(self):
        assert Const(1.0) != 1.0

    def test_nested_differs_deep(self):
        a = If(Compare("<", VarRef("x"), Const(1.0)), [AugAssign(VarRef("comp"), "+", Const(2.0))])
        b = If(Compare("<", VarRef("x"), Const(1.0)), [AugAssign(VarRef("comp"), "+", Const(3.0))])
        assert a != b

    def test_structurally_equal_function(self):
        assert structurally_equal(VarRef("x"), VarRef("x"))
        assert not structurally_equal(VarRef("x"), VarRef("y"))


# ----------------------------------------------------------------- program
class TestKernelAndProgram:
    def _kernel(self, b: IRBuilder) -> Kernel:
        return b.kernel(
            params=[b.fparam("comp"), b.iparam("var_1"), b.aparam("var_2")],
            body=[b.aug("comp", "+", b.lit(1.0))],
        )

    def test_param_queries(self, b64):
        k = self._kernel(b64)
        assert k.param("comp").type is IRType.FLOAT
        assert [p.name for p in k.array_params] == ["var_2"]
        assert [p.name for p in k.int_params] == ["var_1"]
        with pytest.raises(KeyError):
            k.param("nope")

    def test_with_body_shares_signature(self, b64):
        k = self._kernel(b64)
        k2 = k.with_body([])
        assert k2.params == k.params and len(k2.body) == 0

    def test_param_c_decl(self):
        assert Param("var_2", IRType.FLOAT_PTR).c_decl("double") == "double* var_2"
        assert Param("var_1", IRType.INT).c_decl("double") == "int var_1"

    def test_marked_hipify(self, b64):
        p = b64.program(self._kernel(b64), program_id="t")
        h = p.marked_hipify()
        assert h.via_hipify and not p.via_hipify
        assert h.program_id == p.program_id

    def test_irtype_element(self):
        assert IRType.FLOAT_PTR.element is IRType.FLOAT
        with pytest.raises(ValueError):
            IRType.FLOAT.element


# ----------------------------------------------------------------- visitor
class TestWalkAndCollect:
    def test_walk_preorder(self):
        e = BinOp("+", VarRef("a"), BinOp("*", VarRef("b"), VarRef("c")))
        kinds = [type(n).__name__ for n in walk(e)]
        assert kinds == ["BinOp", "VarRef", "BinOp", "VarRef", "VarRef"]

    def test_collect_predicate(self):
        e = BinOp("+", Const(1.0), BinOp("*", Const(2.0), VarRef("x")))
        consts = collect(e, lambda n: isinstance(n, Const))
        assert sorted(c.value for c in consts) == [1.0, 2.0]

    def test_visitor_dispatch(self):
        seen = []

        class V(Visitor):
            def visit_VarRef(self, node):
                seen.append(node.name)

        # No BinOp hook → generic_visit recurses into children → VarRef hook.
        V().visit(BinOp("+", VarRef("a"), VarRef("b")))
        assert seen == ["a", "b"]


class TestTransformer:
    def test_identity_shares_nodes(self):
        e = BinOp("+", VarRef("a"), Call("cos", [VarRef("b")]))
        assert Transformer().transform_expr(e) is e

    def test_rewrite_leaf_rebuilds_spine(self):
        class Renamer(Transformer):
            def visit_VarRef(self, node):
                return VarRef("z") if node.name == "a" else node

        e = BinOp("+", VarRef("a"), VarRef("b"))
        out = Renamer().transform_expr(e)
        assert out == BinOp("+", VarRef("z"), VarRef("b"))
        assert out is not e

    def test_stmt_deletion(self):
        class DropDecls(Transformer):
            def visit_Decl(self, node):
                return None

        body = [Decl("tmp_1", Const(1.0)), AugAssign(VarRef("comp"), "+", Const(2.0))]
        out = DropDecls().transform_body(body)
        assert len(out) == 1 and isinstance(out[0], AugAssign)

    def test_stmt_expansion(self):
        class Duplicate(Transformer):
            def visit_AugAssign(self, node):
                return [node, node]

        body = [AugAssign(VarRef("comp"), "+", Const(1.0))]
        assert len(Duplicate().transform_body(body)) == 2

    def test_transform_inside_loops(self):
        class ConstBump(Transformer):
            def visit_Const(self, node):
                return Const(node.value + 1.0)

        loop = For("i", VarRef("var_1"), [AugAssign(VarRef("comp"), "+", Const(1.0))])
        out = ConstBump().transform_stmt(loop)
        assert out.body[0].expr.value == 2.0

    def test_expr_hook_returning_none_rejected(self):
        class Bad(Transformer):
            def visit_Const(self, node):
                return None

        with pytest.raises(TypeError):
            Bad().transform_expr(Const(1.0))


# ----------------------------------------------------------------- printer
class TestPrinter:
    def test_expr_precedence(self):
        e = BinOp("*", BinOp("+", VarRef("a"), VarRef("b")), VarRef("c"))
        assert expr_to_str(e) == "(a + b) * c"

    def test_right_assoc_parens(self):
        e = BinOp("-", VarRef("a"), BinOp("-", VarRef("b"), VarRef("c")))
        assert expr_to_str(e) == "a - (b - c)"

    def test_division_chain(self):
        e = BinOp("/", BinOp("/", VarRef("a"), VarRef("b")), VarRef("c"))
        assert expr_to_str(e) == "a / b / c"

    def test_const_uses_text(self):
        assert expr_to_str(Const(1.5793e-307, "+1.5793E-307")) == "+1.5793E-307"

    def test_kernel_renders(self, b64):
        k = b64.kernel(
            params=[b64.fparam("comp"), b64.iparam("var_1")],
            body=[
                b64.loop("i", "var_1", [b64.aug("comp", "+", b64.lit(1.0))]),
                b64.when(b64.cmp(">=", "comp", 0.0), [b64.aug("comp", "*", b64.lit(2.0))]),
            ],
        )
        text = print_ir(k)
        assert "for (int i = 0; i < var_1; ++i) {" in text
        assert "if (comp >= +0.0) {" in text
        assert text.startswith("void compute(double comp, int var_1)")


# ----------------------------------------------------------------- builder
class TestBuilder:
    def test_coercions(self, b64):
        assert isinstance(b64.expr(1.5), Const)
        assert isinstance(b64.expr(3), IntConst)
        assert isinstance(b64.expr("x"), VarRef)

    def test_bool_rejected(self, b64):
        with pytest.raises(TypeError):
            b64.expr(True)

    def test_lit_has_canonical_text(self, b64):
        c = b64.lit(1.5793e-307)
        assert c.text == "+1.5793E-307"

    def test_fp32_lit_suffix(self, b32):
        assert b32.lit(2.0).text.endswith("F")

    def test_operators(self, b64):
        e = b64.add(b64.mul("a", "b"), 1.0)
        assert isinstance(e, BinOp) and e.op == "+"

    def test_aug_accepts_string_target(self, b64):
        s = b64.aug("comp", "+", 1.0)
        assert isinstance(s.target, VarRef) and s.target.name == "comp"

    def test_program_wrapper(self, b64):
        k = b64.kernel([b64.fparam("comp")], [b64.aug("comp", "+", 1.0)])
        p = b64.program(k, program_id="xyz")
        assert p.program_id == "xyz" and p.fptype is FPType.FP64


# ---------------------------------------------------------------- validate
class TestValidation:
    def _valid(self, b: IRBuilder):
        return b.kernel(
            params=[b.fparam("comp"), b.iparam("var_1"), b.fparam("var_2"), b.aparam("var_3")],
            body=[
                b.decl("tmp_1", b.add("var_2", 1.0)),
                b.loop("i", "var_1", [b.assign(b.idx("var_3", "i"), b.var("tmp_1"))]),
                b.when(b.cmp("<", "comp", "var_2"), [b.aug("comp", "+", b.var("tmp_1"))]),
            ],
        )

    def test_valid_kernel_passes(self, b64):
        assert validate_kernel(self._valid(b64)) == []

    def test_first_param_must_be_comp(self, b64):
        k = b64.kernel([b64.fparam("x")], [b64.aug("x", "+", 1.0)])
        issues = validate_kernel(k)
        assert any("comp" in str(i) for i in issues)

    def test_duplicate_params_detected(self, b64):
        k = Kernel(
            [Param("comp", IRType.FLOAT), Param("comp", IRType.FLOAT)],
            [],
            FPType.FP64,
        )
        assert any("duplicate" in str(i) for i in validate_kernel(k))

    def test_unknown_name_detected(self, b64):
        k = b64.kernel([b64.fparam("comp")], [b64.aug("comp", "+", b64.var("ghost"))])
        assert any("ghost" in str(i) for i in validate_kernel(k))

    def test_array_used_as_scalar_detected(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.aparam("var_2")],
            [b64.aug("comp", "+", b64.var("var_2"))],
        )
        assert any("as scalar" in str(i) for i in validate_kernel(k))

    def test_subscript_of_scalar_detected(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.fparam("var_2")],
            [b64.aug("comp", "+", b64.idx("var_2", 0))],
        )
        assert any("non-array" in str(i) for i in validate_kernel(k))

    def test_non_boolean_condition_detected(self, b64):
        k = b64.kernel(
            [b64.fparam("comp")],
            [If(VarRef("comp"), [AugAssign(VarRef("comp"), "+", Const(1.0))])],
        )
        assert any("boolean" in str(i) for i in validate_kernel(k))

    def test_loop_var_shadowing_detected(self, b64):
        inner = For("i", VarRef("var_1"), [AugAssign(VarRef("comp"), "+", Const(1.0))])
        outer = For("i", VarRef("var_1"), [inner])
        k = b64.kernel([b64.fparam("comp"), b64.iparam("var_1")], [outer])
        assert any("shadows" in str(i) for i in validate_kernel(k))

    def test_redeclaration_detected(self, b64):
        k = b64.kernel(
            [b64.fparam("comp")],
            [b64.decl("tmp_1", b64.lit(1.0)), b64.decl("tmp_1", b64.lit(2.0))],
        )
        assert any("redeclared" in str(i) for i in validate_kernel(k))

    def test_unknown_function_detected_with_allowlist(self, b64):
        k = b64.kernel([b64.fparam("comp")], [b64.aug("comp", "+", b64.call("frobnicate", 1.0))])
        assert any("frobnicate" in str(i) for i in validate_kernel(k, known_functions=["cos"]))

    def test_assignment_to_unknown_scalar(self, b64):
        k = b64.kernel([b64.fparam("comp")], [b64.assign("nope", b64.lit(1.0))])
        assert any("unknown scalar" in str(i) for i in validate_kernel(k))


# ----------------------------------------------------------------- metrics
class TestMetrics:
    def test_counts(self, b64):
        k = b64.kernel(
            params=[b64.fparam("comp"), b64.iparam("var_1"), b64.aparam("var_2")],
            body=[
                b64.decl("tmp_1", b64.div(b64.lit(1.0), b64.lit(3.0))),
                b64.loop(
                    "i",
                    "var_1",
                    [
                        b64.assign(b64.idx("var_2", "i"), b64.call("cos", b64.var("tmp_1"))),
                        b64.loop("j", "var_1", [b64.aug("comp", "+", b64.idx("var_2", "j"))]),
                    ],
                ),
                b64.when(b64.cmp("<", "comp", 0.0), [b64.aug("comp", "*", b64.lit(2.0))]),
            ],
        )
        m = compute_metrics(k)
        assert m.n_loops == 2
        assert m.max_loop_depth == 2
        assert m.n_conditionals == 1
        assert m.n_temporaries == 1
        assert m.n_math_calls["cos"] == 1
        assert m.n_binops["/"] == 1
        assert m.n_array_params == 1
        assert m.uses_division and m.uses_math

    def test_aggregate_over_corpus(self, small_fp64_corpus):
        stats = aggregate_metrics(t.program for t in small_fp64_corpus)
        assert stats["n_programs"] == len(small_fp64_corpus)
        # Table III characteristics must all be exercised by the corpus.
        assert stats["frac_with_loops"] > 0
        assert stats["frac_with_conditionals"] > 0
        assert stats["frac_with_math_calls"] > 0.5
        assert set(stats["binop_histogram"]) <= {"+", "-", "*", "/"}

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metrics([])
