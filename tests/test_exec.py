"""Tests for the unified execution-service layer (repro.exec).

The contracts pinned here are the redesign's acceptance criteria:
content keying (a HIPIFY twin shares its native test's identity), the
two-tier RunStore's rebinding / LRU eviction / disk round-trip, service
dedup of identical work, backend equivalence, and — the headline —
worker-count invariance of campaign JSON and fuzz ledgers.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.compilers.options import OptLevel, OptSetting, PAPER_OPT_SETTINGS
from repro.exec import (
    CHUNK_CACHE,
    CorpusTestSpec,
    ExecutionService,
    NO_CACHE,
    ProcessPoolBackend,
    RunStore,
    SerialBackend,
    SweepRequest,
    content_id,
    make_backend,
    content_id_for,
)
from repro.fp.types import FPType
from repro.fuzz.engine import FuzzConfig, run_fuzz
from repro.harness.outcomes import RunRecord
from repro.harness.runner import DifferentialRunner
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus

OPTS2 = (OptSetting(OptLevel.O0), OptSetting(OptLevel.O3, fast_math=True))


@pytest.fixture(scope="module")
def fp32_corpus():
    return build_corpus(GeneratorConfig.fp32(inputs_per_program=2), 8, root_seed=424)


def _record(idx: int, value: float, printed=None, flags=None) -> RunRecord:
    return RunRecord(
        test_id="orig",
        input_index=idx,
        opt_label="O0",
        compiler="nvcc",
        printed=printed if printed is not None else repr(value),
        value=value,
        flags=flags,
    )


# ----------------------------------------------------------------- content
class TestContentKeying:
    def test_twin_shares_native_identity(self, fp32_corpus):
        test = fp32_corpus.tests[0]
        assert content_id_for(test) == content_id_for(test.hipified())

    def test_different_programs_differ(self, fp32_corpus):
        assert content_id_for(fp32_corpus.tests[0]) != content_id_for(
            fp32_corpus.tests[1]
        )

    def test_prefix_namespaces_only_the_rendering(self):
        a = content_id(FPType.FP32, "body", prefix="fuzz")
        b = content_id(FPType.FP32, "body")
        assert a.startswith("fuzz-fp32-") and b.startswith("ck-fp32-")
        assert a.split("-")[-1] == b.split("-")[-1]  # same hash


# ------------------------------------------------------------------- store
class TestRunStore:
    def test_rebinds_to_requesting_test_id(self):
        store = RunStore()
        store.put("key", "O0", [_record(0, 1.5), None, _record(2, math.inf)])
        out = store.get("key", "O0", test_id="other")
        assert out[1] is None
        assert out[0].test_id == "other" and out[0].value == 1.5
        assert out[2].value == math.inf
        assert store.hits == 1 and store.misses == 0

    def test_nan_payload_bits_survive(self):
        nan = math.nan
        store = RunStore()
        store.put("key", "O0", [_record(0, nan, printed="-nan")])
        (rec,) = store.get("key", "O0", test_id="t")
        assert math.isnan(rec.value) and rec.printed == "-nan"

    def test_miss_counted(self):
        store = RunStore()
        assert store.get("ghost", "O0", test_id="t") is None
        assert store.misses == 1

    def test_lru_eviction(self):
        store = RunStore(max_entries=2)
        for i in range(3):
            store.put(f"k{i}", "O0", [_record(0, float(i))])
        assert len(store) == 2 and store.evictions == 1
        assert store.get("k0", "O0", test_id="t") is None  # evicted, no disk
        assert store.get("k2", "O0", test_id="t") is not None

    def test_disk_round_trip(self, tmp_path):
        path = tmp_path / "store.jsonl"
        first = RunStore(path=path)
        first.put(
            "key", "O0", [_record(0, 2.5, flags={"inexact": 1}), None]
        )
        first.close()
        reopened = RunStore(path=path)
        out = reopened.get("key", "O0", test_id="fresh")
        assert out[0].test_id == "fresh" and out[0].value == 2.5
        assert out[0].flags == {"inexact": 1}
        assert out[1] is None
        assert reopened.disk_hits == 1

    def test_evicted_entry_served_from_disk(self, tmp_path):
        store = RunStore(path=tmp_path / "store.jsonl", max_entries=1)
        store.put("k0", "O0", [_record(0, 1.0)])
        store.put("k1", "O0", [_record(0, 2.0)])  # evicts k0 from memory
        assert store.evictions == 1
        out = store.get("k0", "O0", test_id="t")
        assert out is not None and out[0].value == 1.0
        assert store.disk_hits == 1

    def test_torn_disk_tail_ignored(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = RunStore(path=path)
        store.put("k0", "O0", [_record(0, 1.0)])
        store.close()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "entry", "k": "k1"')  # killed mid-append
        reopened = RunStore(path=path)
        assert reopened.get("k0", "O0", test_id="t") is not None
        assert reopened.get("k1", "O0", test_id="t") is None

    def test_append_after_torn_tail_survives_reopen(self, tmp_path):
        """An entry appended over a torn tail must not merge into the
        fragment — a third open has to serve both old and new entries."""
        path = tmp_path / "store.jsonl"
        store = RunStore(path=path)
        store.put("k0", "O0", [_record(0, 1.0)])
        store.close()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "entry", "k": "torn"')
        second = RunStore(path=path)
        second.put("k1", "O0", [_record(0, 2.0)])
        second.close()
        third = RunStore(path=path)
        assert third.get("k0", "O0", test_id="t")[0].value == 1.0
        assert third.get("k1", "O0", test_id="t")[0].value == 2.0

    def test_view_pairs_native_with_twin(self, fp32_corpus):
        """The store view replays a twin's CUDA half bit-identically —
        the fused-arm invariant, now by content instead of test id."""
        test = fp32_corpus.tests[0]
        store = RunStore()
        DifferentialRunner().run_sweep(test, OPTS2, populate_cache=store.view_for(test))
        twin = test.hipified()
        view = store.view_for(twin)
        runner = DifferentialRunner()
        sweep = runner.run_sweep(twin, OPTS2, nvcc_cache=view)
        assert runner.nvcc_executions == 0
        assert view.hits == len(OPTS2) * len(test.inputs)
        scratch = DifferentialRunner().run_sweep(twin, OPTS2)
        key = lambda r: (r.test_id, r.input_index, r.opt_label, r.printed)
        for label in sweep:
            assert list(map(key, sweep[label].nvcc_runs)) == list(
                map(key, scratch[label].nvcc_runs)
            )


# ----------------------------------------------------------------- service
class TestExecutionService:
    def test_identical_requests_dedupe(self, fp32_corpus):
        test = fp32_corpus.tests[0]
        service = ExecutionService()
        a, b = service.run_chunk(
            [
                SweepRequest(test=test, opts=OPTS2, tag=("first",)),
                SweepRequest(test=test, opts=OPTS2, tag=("second",)),
            ]
        )
        assert not a.deduped and b.deduped
        assert b.nvcc_executions == 0 and b.hipcc_executions == 0
        assert service.metrics.deduped == 1
        keys = lambda o: [
            (d.test_id, d.input_index, d.opt_label, d.dclass.value)
            for d in o.iter_discrepancies()
        ]
        assert keys(a) == keys(b)

    def test_twin_request_is_not_a_dupe_but_rides_the_store(self, fp32_corpus):
        test = fp32_corpus.tests[0]
        service = ExecutionService()
        native, twin = service.run_chunk(
            [
                SweepRequest(test=test, opts=OPTS2, tag=("native",), cache=CHUNK_CACHE),
                SweepRequest(
                    test=test.hipified(), opts=OPTS2, tag=("hipify",), cache=CHUNK_CACHE
                ),
            ]
        )
        assert not twin.deduped  # different HIP compilation: real work
        assert twin.nvcc_executions == 0  # ... but the CUDA half replayed
        assert twin.nvcc_cache_hits == len(OPTS2) * len(test.inputs)
        assert native.nvcc_executions > 0 and native.nvcc_cache_hits == 0

    def test_corpus_spec_resolves_like_the_corpus(self, fp32_corpus):
        spec = CorpusTestSpec(
            gen=fp32_corpus.config, index=3, root_seed=fp32_corpus.root_seed
        )
        test = spec.resolve()
        assert test.test_id == fp32_corpus.tests[3].test_id
        assert content_id_for(test) == content_id_for(fp32_corpus.tests[3])

    def test_pool_backend_matches_serial(self, fp32_corpus):
        chunks = [
            [
                SweepRequest(test=t, opts=OPTS2, tag=("native",), cache=CHUNK_CACHE),
                SweepRequest(
                    test=t.hipified(), opts=OPTS2, tag=("hipify",), cache=CHUNK_CACHE
                ),
            ]
            for t in fp32_corpus.tests[:4]
        ]

        def flatten(service):
            out = []
            try:
                for outcomes in service.run_sweeps(chunks):
                    for o in outcomes:
                        out.append(
                            (
                                o.tag,
                                o.test_id,
                                o.nvcc_executions,
                                o.nvcc_cache_hits,
                                sorted(
                                    (d.test_id, d.input_index, d.opt_label, d.dclass.value)
                                    for d in o.iter_discrepancies()
                                ),
                            )
                        )
            finally:
                service.close()
            return out

        serial = flatten(ExecutionService(backend=SerialBackend()))
        pooled = flatten(ExecutionService(backend=ProcessPoolBackend(2)))
        assert serial == pooled

    def test_make_backend(self):
        assert make_backend(0).name == "serial"
        assert make_backend(1).name == "serial"
        backend = make_backend(3)
        assert backend.name == "process-pool" and backend.workers == 3
        backend.close()


# ---------------------------------------------------- worker-count invariance
class TestWorkerInvariance:
    def test_campaign_json_invariant_across_workers(self, tmp_path):
        """The acceptance bar: repro-campaign --json at workers=0 and
        workers=2 differ only in the recorded worker count and wall
        clock — every result and counter is byte-identical."""
        from repro.cli import main

        def payload(workers):
            out = tmp_path / f"campaign-w{workers}.json"
            assert (
                main(
                    [
                        "--seed", "7", "--fp64-programs", "8", "--fp32-programs", "4",
                        "--inputs", "2", "--workers", str(workers),
                        "--json", str(out),
                    ]
                )
                == 0
            )
            data = json.loads(out.read_text())
            # The only legitimately scheduling-dependent fields: wall
            # clock, the worker count, and the exec phase timings.
            data.pop("elapsed_seconds")
            data["config"].pop("workers")
            data["exec"].pop("phase_seconds")
            return data

        serial = payload(0)
        pooled = payload(2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(pooled, sort_keys=True)
        assert "exec" in serial and serial["exec"]["nvcc_executions"] > 0

    def test_fp16_arm_json_invariant_across_workers(self, tmp_path):
        """The FP16 acceptance bar: --include-fp16 produces the
        fp16/fp16_hipify pair with nonzero runs, byte-identical across
        worker counts, and the hipify arm's CUDA half fully replayed
        from the fused pair's run store."""
        from repro.cli import main

        def payload(workers):
            out = tmp_path / f"fp16-w{workers}.json"
            assert (
                main(
                    [
                        "--seed", "7", "--fp64-programs", "2", "--no-fp32",
                        "--include-fp16", "--fp16-programs", "6", "--inputs", "2",
                        "--workers", str(workers), "--json", str(out),
                        "--no-adjacency",
                    ]
                )
                == 0
            )
            data = json.loads(out.read_text())
            data.pop("elapsed_seconds")
            data["config"].pop("workers")
            data["exec"].pop("phase_seconds")
            return data

        serial = payload(0)
        pooled = payload(2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(pooled, sort_keys=True)
        assert set(serial["arms"]) == {"fp64", "fp64_hipify", "fp16", "fp16_hipify"}
        fp16 = serial["arms"]["fp16"]
        twin = serial["arms"]["fp16_hipify"]
        assert fp16["total_runs"] > 0 and twin["total_runs"] > 0
        # Cross-arm nvcc replay holds for the new precision pair.
        assert twin["nvcc_executions"] == 0
        assert twin["nvcc_cache_hits"] > 0

    def test_fuzz_ledger_invariant_across_workers(self, tmp_path):
        config = FuzzConfig(
            seed=11,
            n_seed_programs=10,
            inputs_per_program=2,
            max_mutants=12,
            batch_size=6,
            minimize=False,
        )
        serial = run_fuzz(config, ledger=tmp_path / "serial.jsonl")
        pooled = run_fuzz(
            dataclasses.replace(config, workers=2), ledger=tmp_path / "pooled.jsonl"
        )
        assert (tmp_path / "serial.jsonl").read_bytes() == (
            tmp_path / "pooled.jsonl"
        ).read_bytes()
        # Committed accounting is invariant too (discarded speculation is
        # never counted).
        for attr in (
            "pair_runs", "nvcc_executions", "nvcc_cache_hits",
            "mutants_run", "fresh_explored", "duplicates", "raw_discrepancies",
        ):
            assert getattr(serial, attr) == getattr(pooled, attr), attr

    def test_workers_excluded_from_fingerprint(self, tmp_path):
        assert FuzzConfig(workers=4).fingerprint() == FuzzConfig().fingerprint()
        # ... so a serial ledger resumes under a parallel config.
        config = FuzzConfig(
            seed=11, n_seed_programs=8, inputs_per_program=2,
            max_mutants=6, batch_size=3, minimize=False,
        )
        run_fuzz(config, ledger=tmp_path / "ledger.jsonl")
        resumed = run_fuzz(
            dataclasses.replace(config, workers=2, max_mutants=6),
            ledger=tmp_path / "ledger.jsonl",
            resume=True,
        )
        assert resumed.resumed_iterations == 6

    def test_ablation_counts_invariant_across_workers(self, fp32_corpus):
        from repro.analysis.ablation import ABLATIONS, run_ablation

        specs = ABLATIONS[:2]
        tests = fp32_corpus.tests[:4]
        corpus = dataclasses.replace(fp32_corpus, tests=tests)
        serial = run_ablation(corpus, specs, OPTS2)
        pooled = run_ablation(corpus, specs, OPTS2, workers=2)
        assert [r.by_opt for r in serial] == [r.by_opt for r in pooled]


class TestFuzzCliWorkers:
    def test_workers_flag_parses(self):
        from repro.fuzz.cli import _config_from_args, build_parser

        parser = build_parser()
        config = _config_from_args(parser, parser.parse_args(["--workers", "3"]))
        assert config.workers == 3
        with pytest.raises(SystemExit):
            _config_from_args(parser, parser.parse_args(["--workers", "-1"]))

    def test_report_prints_exec_metrics(self, capsys):
        from repro.fuzz.cli import main

        assert (
            main(
                [
                    "--seed", "11", "--seed-programs", "6", "--inputs", "2",
                    "--mutants", "4", "--no-minimize", "--report",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Execution service (committed work):" in out
        assert "nvcc cache misses" in out
