"""Tests for the analysis layer (tables, adjacency matrices, case studies)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.adjacency import adjacency_counts, adjacency_table, adjacency_tables
from repro.analysis.case_studies import isolate_divergence, select_case_studies
from repro.analysis.per_opt import per_opt_counts, per_opt_table
from repro.analysis.report import render_campaign_report
from repro.analysis.summary import summary_dict, summary_table
from repro.compilers.options import OptLevel, OptSetting
from repro.fp.classify import OutcomeClass
from repro.harness.campaign import ArmResult, CampaignConfig, CampaignResult, run_campaign
from repro.harness.differential import Discrepancy, DiscrepancyClass


def _disc(opt, dclass, nv_out, hip_out, test_id="t", idx=0):
    return Discrepancy(
        test_id=test_id,
        input_index=idx,
        opt_label=opt,
        dclass=dclass,
        nvcc_printed="x",
        hipcc_printed="y",
        nvcc_outcome=nv_out,
        hipcc_outcome=hip_out,
    )


@pytest.fixture()
def synthetic_arm():
    labels = ("O0", "O1", "O2", "O3", "O3_FM")
    arm = ArmResult(
        arm="fp64",
        n_programs=10,
        opt_labels=labels,
        runs_by_opt={label: 50 for label in labels},
    )
    arm.discrepancies = [
        _disc("O0", DiscrepancyClass.NUM_NUM, OutcomeClass.NUMBER, OutcomeClass.NUMBER),
        _disc("O0", DiscrepancyClass.INF_NUM, OutcomeClass.INF, OutcomeClass.NUMBER),
        _disc("O3_FM", DiscrepancyClass.NAN_INF, OutcomeClass.NAN, OutcomeClass.INF, idx=1),
        _disc("O3_FM", DiscrepancyClass.NAN_INF, OutcomeClass.INF, OutcomeClass.NAN, idx=2),
        _disc("O3_FM", DiscrepancyClass.NUM_ZERO, OutcomeClass.NUMBER, OutcomeClass.ZERO, idx=3),
    ]
    return arm


@pytest.fixture(scope="module")
def tiny_result():
    return run_campaign(CampaignConfig.tiny(seed=77))


# ----------------------------------------------------------------- summary
class TestSummary:
    def test_dict_accounting(self, tiny_result):
        data = summary_dict(tiny_result)
        for arm in ("fp64", "fp64_hipify", "fp32"):
            row = data[arm]
            assert row["runs_per_option"] == 2 * row["runs_per_option_per_compiler"]
            assert row["total_runs"] == row["runs_per_option"] * 5
            assert 0 <= row["discrepancy_percent"] <= 100

    def test_table_has_paper_rows(self, tiny_result):
        text = summary_table(tiny_result).render()
        for label in (
            "Total Programs",
            "Total Runs per Option per Compiler",
            "Runs on NVCC",
            "Runs on HIPCC",
            "Total Discrepancies (% of Total Runs)",
        ):
            assert label in text

    def test_table_columns(self, tiny_result):
        text = summary_table(tiny_result).render()
        assert "FP64 with HIPIFY" in text and "FP32" in text


# ----------------------------------------------------------------- per-opt
class TestPerOpt:
    def test_counts_zero_filled(self, synthetic_arm):
        counts = per_opt_counts(synthetic_arm)
        assert counts["O1"][DiscrepancyClass.NUM_NUM] == 0
        assert counts["O0"][DiscrepancyClass.NUM_NUM] == 1
        assert counts["O3_FM"][DiscrepancyClass.NAN_INF] == 2

    def test_table_totals(self, synthetic_arm):
        text = per_opt_table(synthetic_arm, "Table V test").render()
        lines = text.splitlines()
        total_line = [l for l in lines if l.startswith("Total")][0]
        assert total_line.split()[1] == "5"

    def test_table_columns_in_paper_order(self, synthetic_arm):
        text = per_opt_table(synthetic_arm, "t").render()
        header = text.splitlines()[2]
        assert header.index("NaN, Inf") < header.index("Num, Zero") < header.index("Num, Num")


# --------------------------------------------------------------- adjacency
class TestAdjacency:
    def test_directional_counts(self, synthetic_arm):
        m = adjacency_counts(synthetic_arm, "O3_FM")
        # One NaN(nvcc)/Inf(hipcc) and one Inf(nvcc)/NaN(hipcc):
        assert m[(OutcomeClass.NAN, OutcomeClass.INF)] == (1, 1)
        # Num(nvcc)/Zero(hipcc): stored in the (Zero, Num) upper cell as
        # the reverse orientation.
        assert m[(OutcomeClass.ZERO, OutcomeClass.NUMBER)] == (0, 1)

    def test_num_num_diagonal_doubled(self, synthetic_arm):
        m = adjacency_counts(synthetic_arm, "O0")
        assert m[(OutcomeClass.NUMBER, OutcomeClass.NUMBER)] == (1, 1)

    def test_cell_sums_match_class_totals(self, tiny_result):
        for arm in tiny_result.arms.values():
            counts = per_opt_counts(arm)
            for opt in arm.opt_labels:
                m = adjacency_counts(arm, opt)
                total_cells = sum(
                    a + b for (r, c), (a, b) in m.items() if r is not c
                )
                total_cells += m[(OutcomeClass.NUMBER, OutcomeClass.NUMBER)][0]
                assert total_cells == sum(counts[opt].values())

    def test_table_renders_triangle(self, synthetic_arm):
        text = adjacency_table(synthetic_arm, "O0").render()
        assert "—" in text and "NVCC \\ HIPCC" in text

    def test_all_levels_rendered(self, synthetic_arm):
        tables = adjacency_tables(synthetic_arm, "Table VI")
        assert len(tables) == 5


# ------------------------------------------------------------ case studies
class TestCaseStudies:
    def test_select_representatives(self, synthetic_arm):
        picks = select_case_studies(synthetic_arm, per_class=1)
        classes = {d.dclass for d in picks}
        assert classes == {
            DiscrepancyClass.NUM_NUM,
            DiscrepancyClass.INF_NUM,
            DiscrepancyClass.NAN_INF,
            DiscrepancyClass.NUM_ZERO,
        }

    def test_select_with_filter(self, synthetic_arm):
        picks = select_case_studies(
            synthetic_arm, per_class=2, classes=[DiscrepancyClass.NAN_INF]
        )
        assert len(picks) == 2
        assert all(d.dclass is DiscrepancyClass.NAN_INF for d in picks)

    def test_isolate_fig5_divergence(self, runner):
        """Case Study 2: isolation pinpoints the ceil-feeding statement."""
        from repro.apps.paper_kernels import fig5_testcase

        report = isolate_divergence(runner, fig5_testcase(), OptSetting(OptLevel.O0), 0)
        assert report.nvcc_printed == "inf"
        assert report.hipcc_printed == "1.34887e-306"
        assert report.divergence is not None
        assert report.divergence.kind == "value"
        assert report.divergence.target == "comp"
        text = report.render()
        assert "paper-fig5" in text and "Root cause trail" in text

    def test_isolate_fig4_divergence(self, runner):
        from repro.apps.paper_kernels import fig4_testcase

        report = isolate_divergence(runner, fig4_testcase(), OptSetting(OptLevel.O0), 0)
        assert report.divergence is not None
        # First divergent store is inside the loop (the fmod accumulation).
        assert "f[i=0]" in report.divergence.path

    def test_report_includes_cuda_source(self, runner):
        from repro.apps.paper_kernels import fig5_testcase

        report = isolate_divergence(runner, fig5_testcase(), OptSetting(OptLevel.O0), 0)
        assert "__global__" in report.cuda_source()


# ------------------------------------------------------------------ report
class TestReport:
    def test_full_report_contains_all_tables(self, tiny_result):
        text = render_campaign_report(tiny_result)
        assert "Table IV" in text
        assert "Table V" in text and "Table VII" in text and "Table IX" in text
        assert "Table VI" in text and "Table VIII" in text and "Table X" in text

    def test_adjacency_can_be_omitted(self, tiny_result):
        text = render_campaign_report(tiny_result, include_adjacency=False)
        assert "Adjacency matrices" not in text

    def test_header_prepended(self, tiny_result):
        text = render_campaign_report(tiny_result, header="HEADER LINE")
        assert text.startswith("HEADER LINE")
