"""Tests for extension-based compiler matching (§III-D)."""

from __future__ import annotations

import pytest

from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.devices.vendor import Vendor
from repro.errors import HarnessError
from repro.harness.matching import match_compiler, match_device


class TestMatching:
    def test_cu_matches_nvcc(self):
        assert isinstance(match_compiler("test-1.cu"), NvccCompiler)

    def test_hip_matches_hipcc(self):
        assert isinstance(match_compiler("/some/dir/test-1.hip"), HipccCompiler)

    def test_case_insensitive(self):
        assert isinstance(match_compiler("T.CU"), NvccCompiler)

    def test_unknown_extension_rejected(self):
        with pytest.raises(HarnessError):
            match_compiler("test.cpp")

    def test_devices_match_vendors(self):
        assert match_device("x.cu").vendor is Vendor.NVIDIA
        assert match_device("x.hip").vendor is Vendor.AMD
        with pytest.raises(HarnessError):
            match_device("x.f90")

    def test_matched_pair_runs_a_written_test(self, tmp_path, small_fp64_corpus):
        """End-to-end: write a test to disk, dispatch on its extensions,
        rebuild + run on the matched stacks."""
        from repro.compilers.options import OptLevel, OptSetting
        from repro.varity.writer import write_test

        test = small_fp64_corpus.tests[0]
        written = write_test(test, tmp_path)
        opt = OptSetting(OptLevel.O0)
        results = {}
        for path in (written.cuda_path, written.hip_path):
            compiler = match_compiler(path)
            device = match_device(path)
            compiled = compiler.compile(test.program, opt)
            results[path.suffix] = device.execute(compiled, test.inputs[0].values)
        assert set(results) == {".cu", ".hip"}
