"""Acceptance tests for the stack registry (repro.stacks) and CPU lane.

The refactor's contract, pinned end to end: stacks are registry values
(nvcc / hipcc / cpu) resolved in canonical order; a campaign over N
stacks produces the N-choose-2 stack-pair discrepancy matrix; results
stay worker-count invariant with the CPU stack enabled; and — the
compatibility half — every pre-registry artifact (checkpoints, fuzz
ledgers, warm run stores, discrepancy payloads, two-stack call sites)
keeps working byte-for-byte under the default (nvcc, hipcc) pair.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.compilers.options import OptLevel, OptSetting
from repro.errors import HarnessError
from repro.exec import (
    ExecutionService,
    RunnerSpec,
    RunStore,
    SHARED_CACHE,
    SweepRequest,
)
from repro.fp.classify import OutcomeClass
from repro.fuzz.engine import FuzzConfig, run_fuzz
from repro.fuzz.signature import DiscrepancySignature
from repro.harness.campaign import CampaignConfig, run_campaign
from repro.harness.differential import Discrepancy, DiscrepancyClass, classify_pair
from repro.harness.runner import DifferentialRunner
from repro.stacks import (
    DEFAULT_STACK_PAIR,
    STACK_NAMES,
    STACKS,
    get_stack,
    pair_name,
    resolve_stacks,
    stack_pairs,
)
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus

OPTS2 = (OptSetting(OptLevel.O0), OptSetting(OptLevel.O3, fast_math=True))

ALL_STACKS = ("nvcc", "hipcc", "cpu")


@pytest.fixture(scope="module")
def fp32_corpus():
    return build_corpus(GeneratorConfig.fp32(inputs_per_program=2), 6, root_seed=424)


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_canonical_order(self):
        assert STACK_NAMES == ("nvcc", "hipcc", "cpu")
        assert DEFAULT_STACK_PAIR == ("nvcc", "hipcc")

    def test_stack_entries_are_complete(self):
        for name, stack in STACKS.items():
            assert stack.name == name
            assert stack.compiler() is not None
            assert stack.device(0) is not None
        assert get_stack("cpu").compiler().name == "clang"
        assert get_stack("cpu").dialect == "c"
        assert get_stack("cpu").source_extension == ".c"
        assert get_stack("cpu").mathlib_name == "libm"

    def test_unknown_stack_raises(self):
        with pytest.raises(HarnessError):
            get_stack("icc")

    def test_resolve_normalizes_to_registry_order(self):
        assert resolve_stacks("cpu,nvcc") == ("nvcc", "cpu")
        assert resolve_stacks("hipcc, nvcc , cpu") == ALL_STACKS
        assert resolve_stacks(["cpu", "hipcc", "cpu"]) == ("hipcc", "cpu")
        assert resolve_stacks(None) == DEFAULT_STACK_PAIR
        assert resolve_stacks("nvcc,hipcc") == DEFAULT_STACK_PAIR

    def test_resolve_rejects_bad_selections(self):
        with pytest.raises(HarnessError):
            resolve_stacks("nvcc")  # differential testing needs two
        with pytest.raises(HarnessError):
            resolve_stacks("nvcc,bogus")
        with pytest.raises(HarnessError):
            resolve_stacks("")

    def test_pair_enumeration(self):
        assert stack_pairs(ALL_STACKS) == (
            ("nvcc", "hipcc"),
            ("nvcc", "cpu"),
            ("hipcc", "cpu"),
        )
        # Order of the selection never matters, only registry order.
        assert stack_pairs(("cpu", "nvcc")) == (("nvcc", "cpu"),)
        assert pair_name(("hipcc", "cpu")) == "hipcc-cpu"

    def test_cpu_stack_renders_c_dialect(self, fp32_corpus):
        src = get_stack("cpu").render(fp32_corpus.tests[0].program)
        assert "#include <math.h>" in src and "__global__" not in src


# ---------------------------------------------------------------- CPU lane
class TestCpuLane:
    def test_runner_sweeps_a_cpu_pair(self, fp32_corpus):
        runner = DifferentialRunner(stacks=("nvcc", "cpu"))
        sweep = runner.run_sweep(fp32_corpus.tests[0], OPTS2)
        for pair in sweep.values():
            assert pair.stacks == ("nvcc", "cpu")
            assert len(pair.lhs_runs) == len(pair.rhs_runs) > 0
            for d in pair.discrepancies:
                assert d.stacks == ("nvcc", "cpu")
        assert runner.lhs_executions > 0 and runner.rhs_executions > 0

    def test_default_runner_unchanged(self, fp32_corpus):
        runner = DifferentialRunner()
        assert runner.stacks == DEFAULT_STACK_PAIR
        sweep = runner.run_sweep(fp32_corpus.tests[0], OPTS2)
        for pair in sweep.values():
            assert pair.stacks == DEFAULT_STACK_PAIR


# ----------------------------------------------------- campaign pair matrix
class TestCampaignStackMatrix:
    def _payload(self, tmp_path, workers):
        from repro.cli import main

        out = tmp_path / f"matrix-w{workers}.json"
        assert (
            main(
                [
                    "--seed", "7", "--fp64-programs", "4", "--fp32-programs", "3",
                    "--inputs", "2", "--stacks", "nvcc,hipcc,cpu",
                    "--workers", str(workers), "--json", str(out), "--no-adjacency",
                ]
            )
            == 0
        )
        data = json.loads(out.read_text())
        data.pop("elapsed_seconds")
        data["config"].pop("workers")
        data["exec"].pop("phase_seconds")
        return data

    def test_three_choose_two_matrix(self, tmp_path):
        """The headline acceptance check: three stacks produce one arm
        per (precision lane × stack pair), the legacy arms keep their
        legacy names, and every arm records its pair."""
        data = self._payload(tmp_path, 0)
        assert set(data["arms"]) == {
            "fp64", "fp64_hipify", "fp64@nvcc-cpu", "fp64@hipcc-cpu",
            "fp32", "fp32@nvcc-cpu", "fp32@hipcc-cpu",
        }
        assert data["config"]["stacks"] == ["nvcc", "hipcc", "cpu"]
        assert data["arms"]["fp64"]["stacks"] == ["nvcc", "hipcc"]
        assert data["arms"]["fp64@nvcc-cpu"]["stacks"] == ["nvcc", "cpu"]
        assert data["arms"]["fp64@hipcc-cpu"]["stacks"] == ["hipcc", "cpu"]
        for arm in data["arms"].values():
            assert arm["total_runs"] > 0
        # The satellite: per-stack execution counters in the exec block.
        by_stack = data["exec"]["executions_by_stack"]
        assert set(by_stack) == set(ALL_STACKS)
        assert all(n > 0 for n in by_stack.values())

    def test_nvcc_lhs_pairs_replay_the_lane_corpus(self, tmp_path):
        """All arms of one lane share a corpus and a fused plan group, so
        every nvcc-lhs pair replays the lane's nvcc runs from the run
        store; a hipcc-lhs pair must *not* (qualified cache key)."""
        data = self._payload(tmp_path, 0)
        native = data["arms"]["fp64"]
        nvcc_cpu = data["arms"]["fp64@nvcc-cpu"]
        hipcc_cpu = data["arms"]["fp64@hipcc-cpu"]
        assert native["nvcc_executions"] > 0
        assert nvcc_cpu["nvcc_executions"] == 0
        assert nvcc_cpu["nvcc_cache_hits"] == native["nvcc_executions"]
        assert hipcc_cpu["nvcc_executions"] > 0  # its lhs is hipcc: real work

    def test_matrix_json_invariant_across_workers(self, tmp_path):
        serial = self._payload(tmp_path, 0)
        pooled = self._payload(tmp_path, 2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(pooled, sort_keys=True)

    def test_discrepancies_carry_their_pair(self, tmp_path):
        data = self._payload(tmp_path, 0)
        legacy = data["arms"]["fp32"]["discrepancies"]
        cpu_pair = data["arms"]["fp32@nvcc-cpu"]["discrepancies"]
        assert legacy and cpu_pair
        for d in legacy:  # default pair: byte-compatible legacy keys
            assert "stacks" not in d and "nvcc" in d and "hipcc" in d
        for d in cpu_pair:
            assert d["stacks"] == ["nvcc", "cpu"] and "lhs" in d and "rhs" in d

    def test_pair_subset_without_hipcc(self, tmp_path):
        """--stacks nvcc,cpu: the CPU lane stands alone — no AMD stack
        model anywhere, no legacy unsuffixed arms."""
        config = CampaignConfig(
            seed=7, n_programs_fp64=3, inputs_per_program=2,
            include_fp32=False, stacks=("nvcc", "cpu"),
        )
        assert config.arm_names() == ["fp64@nvcc-cpu"]
        result = run_campaign(config)
        arm = result.arms["fp64@nvcc-cpu"]
        assert arm.stacks == ("nvcc", "cpu") and arm.total_runs > 0

    def test_fingerprint_stacks_gated_on_non_default(self):
        plain = CampaignConfig(seed=7).fingerprint()
        assert "stacks" not in plain
        wide = CampaignConfig(seed=7, stacks=ALL_STACKS).fingerprint()
        assert wide["stacks"] == list(ALL_STACKS)
        assert {k: v for k, v in wide.items() if k != "stacks"} == plain


# ------------------------------------------------------- fuzz pair matrix
class TestFuzzStackMatrix:
    CONFIG = FuzzConfig(
        seed=11, n_seed_programs=8, inputs_per_program=2,
        max_mutants=8, batch_size=4, minimize=False, stacks=ALL_STACKS,
    )

    def test_fingerprint_format_gated_on_stacks(self):
        plain = dataclasses.replace(self.CONFIG, stacks=DEFAULT_STACK_PAIR)
        assert plain.fingerprint()["format"] == 2
        assert "stacks" not in plain.fingerprint()
        wide = self.CONFIG.fingerprint()
        assert wide["format"] == 4
        assert wide["stacks"] == list(ALL_STACKS)

    def test_per_pair_findings_and_baseline(self, tmp_path):
        result = run_fuzz(self.CONFIG, ledger=tmp_path / "wide.jsonl")
        pairs_seen = {s.stacks for s in result.baseline_signatures}
        assert ("nvcc", "cpu") in pairs_seen and ("hipcc", "cpu") in pairs_seen
        arms = {f.arm for f in result.findings}
        assert arms & {"nvcc-cpu", "hipcc-cpu"}, arms
        for f in result.findings:
            if f.arm in ("nvcc-cpu", "hipcc-cpu"):
                assert f.signature.key.endswith(f"|{f.arm}")
                assert pair_name(f.signature.stacks) == f.arm
        header = json.loads(
            (tmp_path / "wide.jsonl").read_text().splitlines()[0]
        )
        assert header["fingerprint"]["format"] == 4

    @pytest.mark.parametrize("workers", [2, 4])
    def test_ledger_invariant_across_workers(self, tmp_path, workers):
        run_fuzz(self.CONFIG, ledger=tmp_path / "serial.jsonl")
        run_fuzz(
            dataclasses.replace(self.CONFIG, workers=workers),
            ledger=tmp_path / "pooled.jsonl",
        )
        assert (tmp_path / "serial.jsonl").read_bytes() == (
            tmp_path / "pooled.jsonl"
        ).read_bytes()

    def test_wide_ledger_resumes(self, tmp_path):
        path = tmp_path / "wide.jsonl"
        first = run_fuzz(self.CONFIG, ledger=path)
        resumed = run_fuzz(self.CONFIG, ledger=path, resume=True)
        assert resumed.resumed_iterations == self.CONFIG.max_mutants
        assert {f.signature.key for f in resumed.findings} == {
            f.signature.key for f in first.findings
        }


# ------------------------------------------------------------ back-compat
class TestBackCompat:
    def test_classify_pair_keyword_aliases(self):
        nan = float("nan")
        assert classify_pair(nvcc_value=1.0, hipcc_value=nan) == classify_pair(
            1.0, nan
        )
        assert classify_pair(nvcc_value=1.0, hipcc_value=1.0) is None
        with pytest.raises(TypeError):
            classify_pair(1.0)  # one side missing

    def test_discrepancy_legacy_kwargs(self):
        legacy = Discrepancy(
            test_id="t", input_index=0, opt_label="O3",
            dclass=DiscrepancyClass.NAN_NUM,
            nvcc_printed="nan", hipcc_printed="1.5",
            nvcc_outcome=OutcomeClass.NAN, hipcc_outcome=OutcomeClass.NUMBER,
        )
        assert legacy.stacks == DEFAULT_STACK_PAIR
        assert legacy.lhs_printed == "nan" == legacy.nvcc_printed
        assert legacy.rhs_outcome is OutcomeClass.NUMBER is legacy.hipcc_outcome

    def test_discrepancy_old_payload_deserializes(self):
        """A pre-registry checkpoint payload (nvcc/hipcc keys, no stacks)
        loads onto the default pair and re-serializes byte-identically."""
        old = {
            "test_id": "t", "input_index": 1, "opt": "O3_FM",
            "class": "Num, Zero", "nvcc": "1e-40", "hipcc": "0",
            "nvcc_outcome": "Num", "hipcc_outcome": "Zero",
        }
        d = Discrepancy.from_json_dict(dict(old))
        assert d.stacks == DEFAULT_STACK_PAIR
        assert d.to_json_dict() == old
        # Non-default pairs round-trip through the stack-neutral layout.
        wide = Discrepancy(
            test_id="t", input_index=1, opt_label="O3",
            dclass=DiscrepancyClass.NUM_NUM,
            lhs_printed="1.0", rhs_printed="2.0",
            lhs_outcome=OutcomeClass.NUMBER, rhs_outcome=OutcomeClass.NUMBER,
            stacks=("hipcc", "cpu"),
        )
        again = Discrepancy.from_json_dict(wide.to_json_dict())
        assert again == wide and again.stacks == ("hipcc", "cpu")

    def test_signature_key_and_json_gated_on_default_pair(self):
        base = dict(
            cause="ftz-asymmetry", functions=(), opt_label="O3_FM",
            nvcc_outcome="Num", hipcc_outcome="Zero", fptype="fp32",
        )
        legacy = DiscrepancySignature(**base)
        wide = DiscrepancySignature(**base, stacks=("nvcc", "cpu"))
        assert "|" + pair_name(("nvcc", "cpu")) not in legacy.key
        assert "stacks" not in legacy.to_json_dict()
        assert wide.key == legacy.key + "|nvcc-cpu"
        assert DiscrepancySignature.from_json_dict(wide.to_json_dict()) == wide
        assert DiscrepancySignature.from_json_dict(legacy.to_json_dict()) == legacy

    def test_pre_registry_checkpoint_resumes(self, tmp_path):
        """A default-pair checkpoint contains no stack keys at all — it
        is a pre-registry checkpoint — and a fresh default-pair config
        resumes every step from it."""
        config = CampaignConfig(
            seed=7, n_programs_fp64=3, n_programs_fp32=2, inputs_per_program=2
        )
        path = tmp_path / "legacy.jsonl"
        first = run_campaign(config, checkpoint=path)
        assert '"stacks"' not in path.read_text()
        resumed = run_campaign(config, checkpoint=path, resume=True)
        assert resumed.resumed_steps == 2  # every step reloaded, none re-run
        assert {
            n: (a.total_runs, len(a.discrepancies))
            for n, a in resumed.arms.items()
        } == {
            n: (a.total_runs, len(a.discrepancies))
            for n, a in first.arms.items()
        }

    def test_warm_store_replays_nvcc_lhs_pairs_only(self, tmp_path, fp32_corpus):
        """Content keys are stack-independent and the run store caches
        the pair's left side under the bare key for nvcc — so a warm
        pre-registry store serves any nvcc-lhs pair, while a hipcc-lhs
        pair's qualified key misses it."""
        test = fp32_corpus.tests[0]
        store_path = tmp_path / "store.jsonl"
        warm = ExecutionService(store=RunStore(path=store_path))
        (legacy,) = warm.run_chunk(
            [SweepRequest(test=test, opts=OPTS2, tag=("warm",), cache=SHARED_CACHE)]
        )
        assert legacy.nvcc_executions > 0
        warm.close()

        service = ExecutionService(store=RunStore(path=store_path))
        nvcc_cpu, hipcc_cpu = service.run_chunk(
            [
                SweepRequest(
                    test=test, opts=OPTS2, tag=("a",), cache=SHARED_CACHE,
                    runner=RunnerSpec(stacks=("nvcc", "cpu")),
                ),
                SweepRequest(
                    test=test, opts=OPTS2, tag=("b",), cache=SHARED_CACHE,
                    runner=RunnerSpec(stacks=("hipcc", "cpu")),
                ),
            ]
        )
        assert nvcc_cpu.content_key == legacy.content_key == hipcc_cpu.content_key
        assert nvcc_cpu.nvcc_executions == 0  # replayed the warm nvcc runs
        assert nvcc_cpu.nvcc_cache_hits == len(OPTS2) * len(test.inputs)
        assert hipcc_cpu.nvcc_executions > 0  # hipcc lhs: no replay
        service.close()

    def test_runner_spec_default_equals_explicit_pair(self):
        assert RunnerSpec() == RunnerSpec(stacks=DEFAULT_STACK_PAIR)
        assert RunnerSpec() != RunnerSpec(stacks=("nvcc", "cpu"))
