"""Tests for source rendering (repro.codegen) and HIPIFY (repro.hipify)."""

from __future__ import annotations

import re

import pytest

from repro.codegen.base import EmitterConfig, render_expr
from repro.codegen.c import render_c
from repro.codegen.cuda import render_cuda
from repro.codegen.hip import render_hip
from repro.errors import HipifyError
from repro.fp.types import FPType
from repro.hipify.rules import HIPIFY_RULES, LAUNCH_RE
from repro.hipify.translator import hipify_program, hipify_source
from repro.ir.nodes import BinOp, Call, Const, FMA, UnOp, VarRef
from repro.varity.config import GeneratorConfig
from repro.varity.generator import ProgramGenerator


@pytest.fixture(scope="module")
def sample_program():
    return ProgramGenerator(GeneratorConfig.fp64()).generate(11)


@pytest.fixture(scope="module")
def sample_fp32_program():
    return ProgramGenerator(GeneratorConfig.fp32()).generate(11)


# ----------------------------------------------------------------- emitter
class TestEmitter:
    def test_fp32_math_suffix(self):
        cfg = EmitterConfig(FPType.FP32)
        assert render_expr(Call("cos", [VarRef("x")]), cfg) == "cosf(x)"

    def test_fp64_no_suffix(self):
        cfg = EmitterConfig(FPType.FP64)
        assert render_expr(Call("cos", [VarRef("x")]), cfg) == "cos(x)"

    def test_approx_variant_spelling(self):
        cfg = EmitterConfig(FPType.FP32)
        assert render_expr(Call("cos", [VarRef("x")], variant="approx"), cfg) == "__cosf(x)"

    def test_fdividef_kept_verbatim(self):
        cfg = EmitterConfig(FPType.FP32)
        e = Call("__fdividef", [VarRef("x"), VarRef("y")], variant="approx")
        assert render_expr(e, cfg) == "__fdividef(x, y)"

    def test_fma_spelling(self):
        cfg64 = EmitterConfig(FPType.FP64)
        cfg32 = EmitterConfig(FPType.FP32)
        e = FMA(VarRef("a"), VarRef("b"), VarRef("c"))
        assert render_expr(e, cfg64) == "fma(a, b, c)"
        assert render_expr(e, cfg32) == "fmaf(a, b, c)"

    def test_fma_negated_product(self):
        cfg = EmitterConfig(FPType.FP64)
        e = FMA(VarRef("a"), VarRef("b"), VarRef("c"), negate_product=True)
        assert render_expr(e, cfg) == "fma(-(a), b, c)"

    def test_no_double_minus_token(self):
        cfg = EmitterConfig(FPType.FP64)
        e = UnOp("-", Const(-3.0, "-3.0000"))
        text = render_expr(e, cfg)
        assert "--" not in text

    def test_fp32_literal_gets_suffix(self):
        cfg = EmitterConfig(FPType.FP32)
        assert render_expr(Const(1.5, "+1.5000"), cfg) == "+1.5000F"


# ------------------------------------------------------------------- files
class TestRenderedFiles:
    def test_cuda_structure(self, sample_program):
        src = render_cuda(sample_program)
        assert "#include <cuda_runtime.h>" in src
        assert "__global__" in src
        assert 'printf("%.17g\\n", comp);' in src
        assert "<<<1, 1>>>" in src
        assert "cudaDeviceSynchronize();" in src
        assert src.rstrip().endswith("}")

    def test_hip_structure(self, sample_program):
        src = render_hip(sample_program)
        assert "#include <hip/hip_runtime.h>" in src
        assert "hipLaunchKernelGGL(compute, dim3(1), dim3(1), 0, 0," in src
        assert "hipDeviceSynchronize();" in src
        assert "<<<" not in src
        assert "cuda" not in src

    def test_c_structure(self, sample_program):
        src = render_c(sample_program)
        assert "#include <math.h>" in src
        assert "__global__" not in src
        assert "cuda" not in src and "hip" not in src.replace("hip", "hip")  # no API calls
        assert re.search(r"\bcompute\(", src)

    def test_array_programs_allocate(self):
        # Find a generated program with an array parameter.
        gen = ProgramGenerator(GeneratorConfig.fp64())
        program = next(
            p for p in (gen.generate(s) for s in range(80)) if p.kernel.array_params
        )
        src = render_cuda(program)
        name = program.kernel.array_params[0].name
        assert f"cudaMalloc((void**)&{name}," in src
        assert f"{name}_fill" in src
        assert "cudaMemcpyHostToDevice" in src
        assert f"cudaFree({name});" in src

    def test_fp32_rendering_uses_float(self, sample_fp32_program):
        src = render_cuda(sample_fp32_program)
        assert "float comp" in src
        assert "double" not in src

    def test_argc_guard_matches_param_count(self, sample_program):
        src = render_cuda(sample_program)
        n = len(sample_program.kernel.params)
        assert f"if (argc != {n + 1}) return 1;" in src

    def test_cuda_and_hip_same_kernel_body(self, sample_program):
        """Kernel computation must be identical text in .cu and .hip files."""
        def kernel_body(src: str) -> str:
            start = src.index("__global__")
            end = src.index("int main")
            return src[start:end]

        assert kernel_body(render_cuda(sample_program)) == kernel_body(
            render_hip(sample_program)
        )


# ------------------------------------------------------------------ hipify
class TestHipifyRules:
    def test_rule_word_boundary(self):
        # cudaMemcpyHostToDevice must not be chewed by the cudaMemcpy rule.
        src = "cudaMemcpy(a, b, n, cudaMemcpyHostToDevice);"
        for rule in HIPIFY_RULES:
            src = rule.apply(src)
        assert src == "hipMemcpy(a, b, n, hipMemcpyHostToDevice);"

    def test_launch_regex(self):
        m = LAUNCH_RE.search("compute<<<1, 1>>>(a, b);")
        assert m and m.group("name") == "compute"

    def test_launch_with_dim3(self):
        text = "kern<<<dim3(2), dim3(64)>>>(x);"
        assert LAUNCH_RE.search(text)


class TestHipifyTranslator:
    def test_translates_rendered_cuda(self, sample_program):
        hip = hipify_source(render_cuda(sample_program))
        assert "hip/hip_runtime.h" in hip
        assert "hipLaunchKernelGGL" in hip
        assert "<<<" not in hip

    def test_translation_matches_native_hip(self, sample_program):
        """hipify(render_cuda(p)) ≡ render_hip(p) modulo the banner."""
        translated = hipify_source(render_cuda(sample_program), banner=False)
        native = render_hip(sample_program)
        assert translated == native

    @pytest.mark.parametrize("seed", range(12))
    def test_translation_matches_native_hip_many(self, seed):
        gen = ProgramGenerator(GeneratorConfig.fp64())
        p = gen.generate(seed)
        assert hipify_source(render_cuda(p), banner=False) == render_hip(p)

    def test_untranslated_identifier_rejected(self):
        with pytest.raises(HipifyError):
            hipify_source("cudaFrobnicate();")

    def test_surviving_launch_rejected(self):
        with pytest.raises(HipifyError):
            hipify_source("kern<<<1, 1, 0, stream>>>\n(x);")  # 4-arg launch unsupported

    def test_banner_prepended(self, sample_program):
        hip = hipify_source(render_cuda(sample_program))
        assert hip.splitlines()[0].startswith("/* translated by repro-hipify")

    def test_hipify_program_marks_semantics(self, sample_program):
        marked, hip_src = hipify_program(sample_program)
        assert marked.via_hipify
        assert "hipLaunchKernelGGL" in hip_src
        # Original program untouched.
        assert not sample_program.via_hipify
