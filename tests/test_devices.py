"""Tests for the device models (math libraries + interpreter)."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.amd import amd_mi250x
from repro.devices.interpreter import (
    CostModel,
    ExecOptions,
    Interpreter,
    fma_exact,
)
from repro.devices.mathlib.accuracy import AccuracyModel, ErrorProfile
from repro.devices.mathlib.base import (
    EXACT_FUNCTIONS,
    SUPPORTED_FUNCTIONS,
    reference_call,
)
from repro.devices.mathlib.fmod import amd_fmod, fmod_chunked_reduction, fmod_exact, nvidia_fmod
from repro.devices.mathlib.libdevice import LibdeviceMath
from repro.devices.mathlib.ocml import OcmlMath
from repro.devices.mathlib.reference import ReferenceMath
from repro.devices.mathlib.rounding_ops import amd_ceil, nvidia_ceil
from repro.devices.nvidia import nvidia_v100
from repro.devices.vendor import Vendor
from repro.errors import ExecutionError, TrapError
from repro.fp.env import FlushMode
from repro.fp.types import FPType
from repro.fp.ulp import ulp_distance
from repro.ir.builder import IRBuilder
from repro.ir.nodes import IntConst

reasonable_doubles = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e300, max_value=1e300
)


# ------------------------------------------------------------------ vendor
class TestVendor:
    def test_compiler_names(self):
        assert Vendor.NVIDIA.compiler_name == "nvcc"
        assert Vendor.AMD.compiler_name == "hipcc"

    def test_extensions(self):
        assert Vendor.NVIDIA.source_extension == ".cu"
        assert Vendor.AMD.source_extension == ".hip"

    def test_mathlib_names(self):
        assert Vendor.NVIDIA.mathlib_name == "libdevice"
        assert Vendor.AMD.mathlib_name == "ocml"


# --------------------------------------------------------------- reference
class TestReferenceCall:
    def test_basic_values(self):
        assert reference_call("cos", [0.0], FPType.FP64) == 1.0
        assert reference_call("sqrt", [4.0], FPType.FP64) == 2.0

    def test_domain_errors_give_nan(self):
        assert math.isnan(reference_call("sqrt", [-1.0], FPType.FP64))
        assert math.isnan(reference_call("asin", [2.0], FPType.FP64))

    def test_log_zero_gives_neg_inf(self):
        assert reference_call("log", [0.0], FPType.FP64) == -math.inf

    def test_overflow_gives_inf(self):
        assert reference_call("cosh", [1000.0], FPType.FP64) == math.inf

    def test_fp32_rounds_once(self):
        v = reference_call("exp", [1.0], FPType.FP32)
        assert v == float(np.float32(math.exp(1.0)))

    def test_unknown_function_rejected(self):
        with pytest.raises(KeyError):
            reference_call("frobnicate", [1.0], FPType.FP64)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            reference_call("cos", [1.0, 2.0, 3.0], FPType.FP64)

    def test_binary_functions(self):
        assert reference_call("pow", [2.0, 10.0], FPType.FP64) == 1024.0
        assert reference_call("fmin", [1.0, 2.0], FPType.FP64) == 1.0
        assert reference_call("atan2", [0.0, 1.0], FPType.FP64) == 0.0


# ---------------------------------------------------------------- accuracy
class TestAccuracyModel:
    def test_deterministic(self):
        m = AccuracyModel("nvidia-libdevice")
        args = [1.2345]
        assert m.error_ulps("cos", args, FPType.FP64) == m.error_ulps(
            "cos", args, FPType.FP64
        )

    def test_vendors_independent(self):
        nv = AccuracyModel("nvidia-libdevice")
        amd = AccuracyModel("amd-ocml")
        diffs = sum(
            nv.error_ulps("cos", [1.0 + i * 0.01], FPType.FP64)
            != amd.error_ulps("cos", [1.0 + i * 0.01], FPType.FP64)
            for i in range(500)
        )
        assert diffs > 0, "vendor error placements never differ"

    def test_error_rate_in_band(self):
        m = AccuracyModel("nvidia-libdevice")
        hits = sum(
            m.error_ulps("cos", [1.0 + i * 0.001], FPType.FP64) != 0
            for i in range(2000)
        )
        rate = hits / 2000
        assert 0.002 < rate < 0.08  # profile says ~1/64

    def test_error_bounded_by_profile(self):
        m = AccuracyModel("amd-ocml")
        prof = m.profile("pow", FPType.FP64, "default")
        for i in range(500):
            e = m.error_ulps("pow", [1.0 + i * 0.01, 2.5], FPType.FP64)
            assert abs(e) <= prof.max_ulps

    def test_approx_profile_much_noisier(self):
        m = AccuracyModel("nvidia-libdevice")
        default_hits = sum(
            m.error_ulps("cos", [1.0 + i * 0.01], FPType.FP32) != 0 for i in range(300)
        )
        approx_hits = sum(
            m.error_ulps("cos", [1.0 + i * 0.01], FPType.FP32, "approx") != 0
            for i in range(300)
        )
        assert approx_hits > 3 * max(1, default_hits)

    def test_apply_perturbs_by_reported_ulps(self):
        m = AccuracyModel("nvidia-libdevice")
        for i in range(200):
            x = 0.5 + i * 0.003
            ref = reference_call("sin", [x], FPType.FP64)
            out = m.apply("sin", [x], ref, FPType.FP64)
            assert ulp_distance(out, ref) == abs(m.error_ulps("sin", [x], FPType.FP64))

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ErrorProfile(max_ulps=-1, rate_num=1)
        with pytest.raises(ValueError):
            ErrorProfile(max_ulps=1, rate_num=99, rate_den=8)

    def test_hipify_wrapper_rate(self):
        m = AccuracyModel("amd-ocml")
        changed = sum(
            m.apply_hipify_wrapper("fmod", [1.0 + i * 0.01, 0.3], 0.1, FPType.FP64)
            != 0.1
            for i in range(2000)
        )
        # Profile: 24/96 of operands get one extra rounding.
        assert 0.15 < changed / 2000 < 0.35


# -------------------------------------------------------------------- fmod
class TestFmodModels:
    def test_wiring_matches_paper_orientation(self):
        # §IV-D1: hipcc's __ocml_fmod_f64 returned the exact remainder.
        assert amd_fmod is fmod_exact
        assert nvidia_fmod is fmod_chunked_reduction

    def test_paper_operands(self):
        x, y = 1.5917195493481116e289, 1.5793e-307
        assert amd_fmod(x, y) == 7.1923082856620736e-309  # paper's hipcc value
        nv = nvidia_fmod(x, y)
        assert nv != amd_fmod(x, y)
        assert 0.0 < nv < abs(y)  # valid remainder magnitude, different value

    @given(reasonable_doubles, reasonable_doubles)
    @settings(max_examples=300)
    def test_models_agree_for_ordinary_gaps(self, x, y):
        if y == 0.0 or x == 0.0:
            return
        gap = abs(math.frexp(abs(x))[1] - math.frexp(abs(y))[1])
        if gap <= 52:
            assert nvidia_fmod(x, y) == amd_fmod(x, y) == math.fmod(x, y)

    def test_exact_matches_math_fmod(self):
        for x, y in [(7.5, 2.0), (-7.5, 2.0), (1e300, 3.7), (5e-324, 1.0)]:
            assert fmod_exact(x, y) == math.fmod(x, y)

    def test_ieee_special_cases(self):
        for f in (fmod_exact, fmod_chunked_reduction):
            assert math.isnan(f(math.nan, 1.0))
            assert math.isnan(f(1.0, 0.0))
            assert math.isnan(f(math.inf, 2.0))
            assert f(3.5, math.inf) == 3.5
            assert f(0.0, 2.0) == 0.0

    def test_sign_follows_dividend(self):
        assert fmod_chunked_reduction(-1e300, 1.1e-300) <= 0.0

    def test_result_magnitude_bounded(self):
        # Remainder always smaller than the divisor in magnitude.
        for x, y in [(1e308, 3e-308), (1e250, 7e-120), (9e299, 1.3e-3)]:
            r = fmod_chunked_reduction(x, y)
            assert abs(r) < abs(y)

    def test_fp32_path(self):
        x, y = 3.0e30, 7.0e-30  # gap > 23 bits: chunked path in fp32
        r_nv = nvidia_fmod(x, y, FPType.FP32)
        r_amd = amd_fmod(x, y, FPType.FP32)
        assert abs(r_nv) < abs(y) and abs(r_amd) < abs(y)


# -------------------------------------------------------------------- ceil
class TestCeilModels:
    def test_paper_quirk(self):
        # §IV-D2: ceil(+1.5955E-125) → 0 on nvcc, 1 on hipcc.
        assert nvidia_ceil(1.5955e-125) == 0.0
        assert amd_ceil(1.5955e-125) == 1.0

    def test_quirk_threshold(self):
        # The magic-add path loses values below 2^-54.
        assert nvidia_ceil(2.0**-55) == 0.0
        assert nvidia_ceil(1.0e-10) == 1.0

    @given(st.floats(min_value=-1e15, max_value=1e15, allow_nan=False))
    @settings(max_examples=300)
    def test_models_agree_for_ordinary_magnitudes(self, x):
        if x == 0.0 or abs(x) < 1e-9:
            return
        assert nvidia_ceil(x) == amd_ceil(x) == math.ceil(x)

    def test_integers_exact(self):
        for v in (2.0, -2.0, 1.0, 2.0**51, 123456.0):
            assert nvidia_ceil(v) == v

    def test_negative_values_exact(self):
        assert nvidia_ceil(-2.5) == -2.0
        assert nvidia_ceil(-1e-200) == -0.0

    def test_huge_values_pass_through(self):
        assert nvidia_ceil(2.0**53) == 2.0**53

    def test_nonfinite_pass_through(self):
        assert math.isnan(nvidia_ceil(math.nan))
        assert nvidia_ceil(math.inf) == math.inf

    def test_fp32_quirk_scales(self):
        assert nvidia_ceil(1e-30, FPType.FP32) == 0.0
        assert amd_ceil(1e-30, FPType.FP32) == 1.0


# ------------------------------------------------------------- libraries
class TestVendorLibraries:
    def test_exact_functions_identical(self):
        nv, amd = LibdeviceMath(), OcmlMath()
        for func in sorted(EXACT_FUNCTIONS):
            for x in (0.3, -2.7, 123.456, 1e-300):
                args = [x, 0.7] if func in ("fmin", "fmax") else [x]
                a = nv.call(func, args, FPType.FP64)
                b = amd.call(func, args, FPType.FP64)
                assert a == b or (math.isnan(a) and math.isnan(b))

    def test_vendors_disagree_somewhere(self):
        nv, amd = LibdeviceMath(), OcmlMath()
        diffs = sum(
            nv.call("cos", [0.1 + 0.01 * i], FPType.FP64)
            != amd.call("cos", [0.1 + 0.01 * i], FPType.FP64)
            for i in range(800)
        )
        assert diffs > 0

    def test_vendors_agree_mostly(self):
        nv, amd = LibdeviceMath(), OcmlMath()
        agreements = sum(
            nv.call("cos", [0.1 + 0.01 * i], FPType.FP64)
            == amd.call("cos", [0.1 + 0.01 * i], FPType.FP64)
            for i in range(800)
        )
        assert agreements > 700  # divergence is sparse, as on real GPUs

    def test_exceptional_results_identical(self):
        nv, amd = LibdeviceMath(), OcmlMath()
        for func, args in [("log", [-1.0]), ("sqrt", [-4.0]), ("cosh", [1e4])]:
            a = nv.call(func, args, FPType.FP64)
            b = amd.call(func, args, FPType.FP64)
            assert (math.isnan(a) and math.isnan(b)) or a == b

    def test_fdividef_quirk(self):
        nv = LibdeviceMath()
        # |y| > 2^126 → 0 (documented __fdividef behaviour).
        assert nv.call("__fdividef", [1.0, 1.0e38], FPType.FP32) == 0.0
        # sign of the zero follows the quotient sign
        out = nv.call("__fdividef", [-1.0, 1.0e38], FPType.FP32)
        assert out == 0.0 and math.copysign(1.0, out) < 0

    def test_fdividef_normal_range(self):
        nv = LibdeviceMath()
        out = nv.call("__fdividef", [1.0, 3.0], FPType.FP32)
        assert out == pytest.approx(1.0 / 3.0, rel=1e-6)

    def test_fdividef_fp64_rejected(self):
        with pytest.raises(ValueError):
            LibdeviceMath().call("__fdividef", [1.0, 2.0], FPType.FP64)

    def test_ocml_maps_fdividef_to_division(self):
        amd = OcmlMath()
        assert amd.call("__fdividef", [1.0, 1.0e38], FPType.FP32) != 0.0

    def test_hipify_variant_changes_some_results(self):
        amd = OcmlMath()
        changed = sum(
            amd.call("exp", [0.5 + i * 0.001], FPType.FP64)
            != amd.call("exp", [0.5 + i * 0.001], FPType.FP64, variant="hipify")
            for i in range(3000)
        )
        assert changed > 0

    def test_reference_math_is_clean(self):
        ref = ReferenceMath()
        for i in range(300):
            x = 0.5 + i * 0.01
            assert ref.call("cos", [x], FPType.FP64) == reference_call(
                "cos", [x], FPType.FP64
            )

    def test_salted_library_differs(self):
        a, b = LibdeviceMath(salt=0), LibdeviceMath(salt=1)
        diffs = sum(
            a.call("sin", [0.1 + 0.01 * i], FPType.FP64)
            != b.call("sin", [0.1 + 0.01 * i], FPType.FP64)
            for i in range(800)
        )
        assert diffs > 0


# --------------------------------------------------------------------- fma
class TestFmaExact:
    @given(reasonable_doubles, reasonable_doubles, reasonable_doubles)
    @settings(max_examples=200)
    def test_matches_rational_arithmetic(self, a, b, c):
        expected_fr = Fraction(a) * Fraction(b) + Fraction(c)
        try:
            expected = float(expected_fr)
        except OverflowError:
            expected = math.inf if expected_fr > 0 else -math.inf
        assert fma_exact(a, b, c) == expected

    def test_single_rounding_beats_two(self):
        # a*b overflows but a*b+c is finite: fused keeps it finite.
        a, b, c = 1.5e154, 1.4e154, -1.7e308
        assert math.isinf(a * b + c) or (a * b) == math.inf
        assert math.isfinite(fma_exact(a, b, c))

    def test_ieee_exceptional_rules(self):
        assert math.isnan(fma_exact(math.inf, 0.0, 1.0))
        assert math.isnan(fma_exact(math.inf, 1.0, -math.inf))
        assert fma_exact(math.inf, 1.0, 5.0) == math.inf
        assert fma_exact(1.0, 1.0, math.inf) == math.inf
        assert math.isnan(fma_exact(math.nan, 1.0, 1.0))

    def test_exact_cancellation(self):
        # fma computes a*b exactly: a*b - round(a*b) is the rounding error.
        a = 1.0 + 2.0**-30
        p = a * a
        err = fma_exact(a, a, -p)
        assert err != 0.0 or p == a * a


# ------------------------------------------------------------- interpreter
class TestInterpreter:
    def _run(self, kernel, inputs, mathlib=None, **opts):
        interp = Interpreter(mathlib or ReferenceMath())
        return interp.run(kernel, inputs, ExecOptions(**opts))

    def test_straight_line(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.fparam("var_2")],
            [b64.aug("comp", "+", b64.mul("var_2", b64.lit(2.0)))],
        )
        r = self._run(k, [1.0, 3.0])
        assert r.value == 7.0 and r.printed == "7"

    def test_printed_matches_c_g17(self, b64):
        k = b64.kernel([b64.fparam("comp")], [b64.aug("comp", "+", b64.lit(0.1))])
        r = self._run(k, [0.2])
        assert r.printed == "%.17g" % (0.2 + 0.1)

    def test_nan_printing(self, b64):
        k = b64.kernel([b64.fparam("comp")], [b64.aug("comp", "/", b64.raw_lit("+0.0", 0.0))])
        r = self._run(k, [0.0])
        assert r.printed in ("nan", "-nan")

    def test_loop_executes_bound_times(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.iparam("var_1")],
            [b64.loop("i", "var_1", [b64.aug("comp", "+", b64.lit(1.0))])],
        )
        assert self._run(k, [0.0, 5]).value == 5.0

    def test_nested_loops(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.iparam("var_1")],
            [
                b64.loop(
                    "i", "var_1",
                    [b64.loop("j", "var_1", [b64.aug("comp", "+", b64.lit(1.0))])],
                )
            ],
        )
        assert self._run(k, [0.0, 4]).value == 16.0

    def test_loop_counter_visible_as_float(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.iparam("var_1")],
            [b64.loop("i", "var_1", [b64.aug("comp", "+", b64.var("i"))])],
        )
        assert self._run(k, [0.0, 4]).value == 6.0  # 0+1+2+3

    def test_if_taken_and_not_taken(self, b64):
        k = b64.kernel(
            [b64.fparam("comp")],
            [b64.when(b64.cmp(">=", "comp", 1.0), [b64.aug("comp", "+", b64.lit(10.0))])],
        )
        assert self._run(k, [2.0]).value == 12.0
        assert self._run(k, [0.5]).value == 0.5

    def test_nan_comparison_false(self, b64):
        k = b64.kernel(
            [b64.fparam("comp")],
            [b64.when(b64.cmp(">=", "comp", "comp"), [b64.aug("comp", "*", b64.raw_lit("+0.0", 0.0))])],
        )
        r = self._run(k, [math.nan])
        assert math.isnan(r.value)  # branch not taken: NaN >= NaN is false

    def test_boolop_shortcircuit(self, b64):
        cond = b64.lor(b64.cmp("<", "comp", 1.0), b64.cmp(">", b64.div("comp", 0.0), 0.0))
        k = b64.kernel(
            [b64.fparam("comp")],
            [b64.when(cond, [b64.aug("comp", "+", b64.lit(1.0))])],
        )
        r = self._run(k, [0.0])
        assert r.value == 1.0
        # short-circuit: the division by zero on the right never ran
        assert r.flags["divide_by_zero"] == 0

    def test_array_fill_and_update(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.iparam("var_1"), b64.aparam("var_2")],
            [
                b64.loop(
                    "i", "var_1",
                    [
                        b64.assign(b64.idx("var_2", "i"), b64.mul(b64.idx("var_2", "i"), b64.lit(2.0))),
                        b64.aug("comp", "+", b64.idx("var_2", "i")),
                    ],
                )
            ],
        )
        assert self._run(k, [0.0, 3, 1.5]).value == 9.0  # 3 × (1.5*2)

    def test_array_index_arithmetic(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.iparam("var_1"), b64.aparam("var_2")],
            [
                b64.loop(
                    "i", "var_1",
                    [b64.aug("comp", "+", b64.idx("var_2", b64.add(b64.var("i"), IntConst(1))))],
                )
            ],
        )
        assert self._run(k, [0.0, 2, 4.0]).value == 8.0

    def test_fp32_per_op_rounding(self, b32):
        k = b32.kernel(
            [b32.fparam("comp")],
            [b32.aug("comp", "+", b32.lit(1.0e-10))],
        )
        r = Interpreter(ReferenceMath()).run(k, [1.0], ExecOptions())
        assert r.value == 1.0  # absorbed in fp32

    def test_flush_modes_affect_results(self, b64, b32):
        k = b32.kernel(
            [b32.fparam("comp"), b32.fparam("var_2")],
            [b32.aug("comp", "+", b32.mul("var_2", b32.lit(1.0e10)))],
        )
        subnormal32 = 1.0e-41
        keep = Interpreter(ReferenceMath()).run(k, [0.0, subnormal32], ExecOptions())
        ftz = Interpreter(ReferenceMath()).run(
            k, [0.0, subnormal32], ExecOptions(flush=FlushMode.FLUSH_INPUTS_OUTPUTS)
        )
        assert keep.value != 0.0 and ftz.value == 0.0

    def test_exception_flags_recorded(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.fparam("var_2")],
            [b64.aug("comp", "+", b64.div(b64.lit(1.0), "var_2"))],
        )
        r = self._run(k, [0.0, 0.0])
        assert r.flags["divide_by_zero"] == 1

    def test_step_budget_trap(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.iparam("var_1")],
            [b64.loop("i", "var_1", [b64.aug("comp", "+", b64.lit(1.0))])],
        )
        with pytest.raises(TrapError):
            Interpreter(ReferenceMath()).run(k, [0.0, 10000], ExecOptions(max_steps=100))

    def test_wrong_arity_rejected(self, b64):
        k = b64.kernel([b64.fparam("comp")], [])
        with pytest.raises(ExecutionError):
            self._run(k, [1.0, 2.0])

    def test_trace_records_stores(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.iparam("var_1")],
            [
                b64.decl("tmp_1", b64.lit(2.0)),
                b64.loop("i", "var_1", [b64.aug("comp", "+", b64.var("tmp_1"))]),
            ],
        )
        r = self._run(k, [0.0, 2], trace=True)
        targets = [e.target for e in r.trace]
        assert targets == ["tmp_1", "comp", "comp"]
        assert r.trace[0].value == 2.0
        assert "f[i=1]" in r.trace[2].path

    def test_cost_accounting_monotone(self, b64):
        k = b64.kernel(
            [b64.fparam("comp"), b64.iparam("var_1")],
            [b64.loop("i", "var_1", [b64.aug("comp", "+", b64.call("cos", "comp"))])],
        )
        small = self._run(k, [0.0, 2])
        big = self._run(k, [0.0, 8])
        assert big.cost_cycles > small.cost_cycles > 0

    def test_cost_model_call_costs(self):
        cm = CostModel()
        assert cm.call_cost("cos", "default") == cm.call
        assert cm.call_cost("cos", "approx") == cm.call_approx
        assert cm.call_cost("fabs", "default") == cm.call_cheap
        assert cm.call_cost("__fdividef", "approx") == cm.call_fdividef
        assert cm.call_cost("fmod", "default") == cm.call_fmod


# ------------------------------------------------------------------ device
class TestDevice:
    def test_specs(self, nvidia_device, amd_device):
        assert nvidia_device.vendor is Vendor.NVIDIA
        assert amd_device.vendor is Vendor.AMD
        assert "V100" in nvidia_device.spec.describe()
        assert "MI250X" in amd_device.spec.describe()

    def test_trace_flag_promotes_options(self, b64, nvcc, nvidia_device):
        from repro.compilers.options import OptLevel, OptSetting

        k = b64.kernel([b64.fparam("comp")], [b64.aug("comp", "+", b64.lit(1.0))])
        ck = nvcc.compile(b64.program(k), OptSetting(OptLevel.O0))
        r = nvidia_device.execute(ck, [1.0], trace=True)
        assert len(r.trace) == 1
