/* Varity test golden-c-fp16-000000 (fp16) — host build */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

#define VARITY_ARRAY_N 64

void compute(_Float16 comp, int var_1, _Float16* var_2, _Float16 var_3) {
  _Float16 tmp_1 = +6.1035E-5F16 * var_3;
  for (int i = 0; i < var_1; ++i) {
    var_2[i] = hsqrt(tmp_1);
  }
  if (var_3 > +0.0F16) {
    comp += hfmod(var_3, +1.5000E3F16);
  }
  comp *= hexp(var_2[0]);
  printf("%.17g\n", (double)comp);
}

int main(int argc, char** argv) {
  if (argc != 5) return 1;
  _Float16 comp = (_Float16)atof(argv[1]);
  int var_1 = atoi(argv[2]);
  _Float16 var_2_fill = (_Float16)atof(argv[3]);
  _Float16 var_3 = (_Float16)atof(argv[4]);
  _Float16* var_2 = (_Float16*)malloc(VARITY_ARRAY_N * sizeof(_Float16));
  for (int _i = 0; _i < VARITY_ARRAY_N; ++_i) var_2[_i] = var_2_fill;
  compute(comp, var_1, var_2, var_3);
  free(var_2);
  return 0;
}
