/* Varity test oracle-fp32-8a9e8acc367bbcb0 (fp32) */
#include <stdio.h>
#include <stdlib.h>
#include <cuda_runtime.h>

#define VARITY_ARRAY_N 64

__global__
void compute(float comp, float var_2, float var_3, float var_4) {
  comp = fmaf(var_2, var_3, var_4);
  printf("%.17g\n", comp);
}

int main(int argc, char** argv) {
  if (argc != 5) return 1;
  float comp = (float)atof(argv[1]);
  float var_2 = (float)atof(argv[2]);
  float var_3 = (float)atof(argv[3]);
  float var_4 = (float)atof(argv[4]);
  compute<<<1, 1>>>(comp, var_2, var_3, var_4);
  cudaDeviceSynchronize();
  return 0;
}
