/* Varity test golden-fp16-000000 (fp16) */
#include <stdio.h>
#include <stdlib.h>
#include <cuda_runtime.h>
#include <cuda_fp16.h>

#define VARITY_ARRAY_N 64

__global__
void compute(__half comp, int var_1, __half* var_2, __half var_3) {
  __half tmp_1 = +6.1035E-5F16 * var_3;
  for (int i = 0; i < var_1; ++i) {
    var_2[i] = hsqrt(tmp_1);
  }
  if (var_3 > +0.0F16) {
    comp += hfmod(var_3, +1.5000E3F16);
  }
  comp *= hexp(var_2[0]);
  printf("%.17g\n", (double)comp);
}

int main(int argc, char** argv) {
  if (argc != 5) return 1;
  __half comp = (__half)atof(argv[1]);
  int var_1 = atoi(argv[2]);
  __half var_2_fill = (__half)atof(argv[3]);
  __half var_3 = (__half)atof(argv[4]);
  __half* var_2_h = (__half*)malloc(VARITY_ARRAY_N * sizeof(__half));
  for (int _i = 0; _i < VARITY_ARRAY_N; ++_i) var_2_h[_i] = var_2_fill;
  __half* var_2;
  cudaMalloc((void**)&var_2, VARITY_ARRAY_N * sizeof(__half));
  cudaMemcpy(var_2, var_2_h, VARITY_ARRAY_N * sizeof(__half), cudaMemcpyHostToDevice);
  compute<<<1, 1>>>(comp, var_1, var_2, var_3);
  cudaDeviceSynchronize();
  cudaFree(var_2);
  free(var_2_h);
  return 0;
}
