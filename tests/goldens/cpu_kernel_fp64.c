/* Varity test golden-c-fp64-000000 (fp64) — host build */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

#define VARITY_ARRAY_N 64

void compute(double comp, int var_1, double* var_2, double var_3) {
  double tmp_1 = +6.1035E-5 * var_3;
  for (int i = 0; i < var_1; ++i) {
    var_2[i] = sqrt(tmp_1);
  }
  if (var_3 > +0.0) {
    comp += fmod(var_3, +1.5000E3);
  }
  comp *= exp(var_2[0]);
  printf("%.17g\n", comp);
}

int main(int argc, char** argv) {
  if (argc != 5) return 1;
  double comp = (double)atof(argv[1]);
  int var_1 = atoi(argv[2]);
  double var_2_fill = (double)atof(argv[3]);
  double var_3 = (double)atof(argv[4]);
  double* var_2 = (double*)malloc(VARITY_ARRAY_N * sizeof(double));
  for (int _i = 0; _i < VARITY_ARRAY_N; ++_i) var_2[_i] = var_2_fill;
  compute(comp, var_1, var_2, var_3);
  free(var_2);
  return 0;
}
