/* Varity test golden-c-fp32-000000 (fp32) — host build */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

#define VARITY_ARRAY_N 64

void compute(float comp, int var_1, float* var_2, float var_3) {
  float tmp_1 = +6.1035E-5F * var_3;
  for (int i = 0; i < var_1; ++i) {
    var_2[i] = sqrtf(tmp_1);
  }
  if (var_3 > +0.0F) {
    comp += fmodf(var_3, +1.5000E3F);
  }
  comp *= expf(var_2[0]);
  printf("%.17g\n", comp);
}

int main(int argc, char** argv) {
  if (argc != 5) return 1;
  float comp = (float)atof(argv[1]);
  int var_1 = atoi(argv[2]);
  float var_2_fill = (float)atof(argv[3]);
  float var_3 = (float)atof(argv[4]);
  float* var_2 = (float*)malloc(VARITY_ARRAY_N * sizeof(float));
  for (int _i = 0; _i < VARITY_ARRAY_N; ++_i) var_2[_i] = var_2_fill;
  compute(comp, var_1, var_2, var_3);
  free(var_2);
  return 0;
}
