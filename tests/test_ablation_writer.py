"""Tests for the ablation harness and the corpus writer."""

from __future__ import annotations

import pytest

from repro.analysis.ablation import (
    ABLATIONS,
    AblationSpec,
    ablation_table,
    run_ablation,
)
from repro.compilers.options import OptLevel, OptSetting
from repro.utils.jsonio import load_json
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus
from repro.varity.writer import write_corpus, write_test


@pytest.fixture(scope="module")
def ablation_corpus():
    return build_corpus(GeneratorConfig.fp32(inputs_per_program=2), 30, root_seed=5)


class TestAblation:
    @pytest.fixture(scope="class")
    def results(self, ablation_corpus):
        return run_ablation(
            ablation_corpus,
            opts=[OptSetting(OptLevel.O0), OptSetting(OptLevel.O3, fast_math=True)],
        )

    def test_all_specs_run(self, results):
        assert [r.spec.name for r in results] == [s.name for s in ABLATIONS]

    def test_baseline_finds_divergence(self, results):
        assert results[0].total > 0

    def test_identical_mathlib_kills_o0(self, results):
        by_name = {r.spec.name: r for r in results}
        assert by_name["identical-mathlib"].by_opt["O0"] == 0

    def test_all_equalized_is_zero(self, results):
        """Self-check: no unmodeled asymmetry between the two stacks."""
        by_name = {r.spec.name: r for r in results}
        assert by_name["all-equalized"].total == 0

    def test_ablations_never_negative(self, results):
        for r in results:
            assert all(v >= 0 for v in r.by_opt.values())

    def test_table_renders(self, results):
        text = ablation_table(results).render()
        assert "baseline" in text and "all-equalized" in text

    def test_table_rejects_empty(self):
        with pytest.raises(ValueError):
            ablation_table([])

    def test_spec_is_frozen(self):
        with pytest.raises(AttributeError):
            ABLATIONS[0].name = "x"  # type: ignore[misc]


class TestWriter:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(GeneratorConfig.fp64(inputs_per_program=2), 4, root_seed=9)

    def test_write_single_test(self, corpus, tmp_path):
        written = write_test(corpus.tests[0], tmp_path, include_hipify=True)
        assert written.cuda_path.exists()
        assert written.hip_path.exists()
        assert written.c_path.exists()
        assert written.hipify_path is not None and written.hipify_path.exists()
        assert "__global__" in written.cuda_path.read_text()
        lines = written.inputs_path.read_text().splitlines()
        assert len(lines) == len(corpus.tests[0].inputs)

    def test_write_corpus_manifest(self, corpus, tmp_path):
        written = write_corpus(corpus, tmp_path, include_hipify=True)
        assert len(written) == len(corpus)
        manifest = load_json(tmp_path / "manifest.json")
        assert manifest["n_programs"] == len(corpus)
        assert manifest["fptype"] == "fp64"
        assert set(manifest["files"]) == {t.test_id for t in corpus}

    def test_manifest_rebuilds_corpus(self, corpus, tmp_path):
        from repro.varity.corpus import regenerate_test

        write_corpus(corpus, tmp_path)
        manifest = load_json(tmp_path / "manifest.json")
        for entry in manifest["tests"]:
            rebuilt = regenerate_test(
                corpus.config,
                seed=entry["seed"],
                test_id=entry["test_id"],
                input_texts=entry["inputs"],
            )
            original = next(t for t in corpus if t.test_id == entry["test_id"])
            assert rebuilt.program.kernel == original.program.kernel

    def test_hipify_file_matches_translator(self, corpus, tmp_path):
        from repro.codegen.cuda import render_cuda
        from repro.hipify.translator import hipify_source

        written = write_test(corpus.tests[1], tmp_path, include_hipify=True)
        expected = hipify_source(render_cuda(corpus.tests[1].program))
        assert written.hipify_path.read_text() == expected

    def test_c_rendering_optional(self, corpus, tmp_path):
        written = write_test(corpus.tests[2], tmp_path, include_c=False)
        assert not written.c_path.exists()
