"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.compilers.options import OptLevel, OptSetting
from repro.devices.amd import amd_mi250x
from repro.devices.nvidia import nvidia_v100
from repro.fp.types import FPType
from repro.harness.runner import DifferentialRunner
from repro.ir.builder import IRBuilder
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus


@pytest.fixture(scope="session")
def nvidia_device():
    return nvidia_v100()


@pytest.fixture(scope="session")
def amd_device():
    return amd_mi250x()


@pytest.fixture(scope="session")
def nvcc():
    return NvccCompiler()


@pytest.fixture(scope="session")
def hipcc():
    return HipccCompiler()


@pytest.fixture(scope="session")
def runner():
    return DifferentialRunner()


@pytest.fixture
def b64():
    """FP64 IR builder."""
    return IRBuilder(FPType.FP64)


@pytest.fixture
def b32():
    """FP32 IR builder."""
    return IRBuilder(FPType.FP32)


@pytest.fixture(scope="session")
def small_fp64_corpus():
    cfg = GeneratorConfig.fp64(inputs_per_program=3)
    return build_corpus(cfg, 25, root_seed=1234)


@pytest.fixture(scope="session")
def small_fp32_corpus():
    cfg = GeneratorConfig.fp32(inputs_per_program=3)
    return build_corpus(cfg, 20, root_seed=1234)


O0 = OptSetting(OptLevel.O0)
O1 = OptSetting(OptLevel.O1)
O2 = OptSetting(OptLevel.O2)
O3 = OptSetting(OptLevel.O3)
O3_FM = OptSetting(OptLevel.O3, fast_math=True)


@pytest.fixture(params=[O0, O1, O3, O3_FM], ids=lambda o: o.label)
def any_opt(request):
    return request.param
