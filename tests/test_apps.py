"""Tests for the application layer: paper kernels, BT mini-app, stencil."""

from __future__ import annotations

import math

import pytest

from repro.apps.bt import BTRow, build_bt_program, run_bt_experiment
from repro.apps.paper_kernels import (
    FIG4_FMOD_X,
    FIG4_FMOD_Y,
    case3_engineered_testcase,
    fig2_program,
    fig4_testcase,
    fig5_testcase,
    fig6_testcase,
)
from repro.apps.stencil import build_stencil_program
from repro.compilers.options import OptLevel, OptSetting
from repro.devices.mathlib.fmod import amd_fmod, nvidia_fmod
from repro.fp.classify import OutcomeClass, classify_value
from repro.fp.types import FPType
from repro.harness.differential import DiscrepancyClass, classify_pair
from repro.ir.validate import validate_kernel

O0 = OptSetting(OptLevel.O0)
O1 = OptSetting(OptLevel.O1)
O3_FM = OptSetting(OptLevel.O3, fast_math=True)


# -------------------------------------------------------------- paper figs
class TestFig2:
    def test_valid_and_renders_like_paper(self):
        p = fig2_program()
        assert validate_kernel(p.kernel) == []
        from repro.codegen.cuda import render_cuda

        src = render_cuda(p)
        # Landmarks from the paper's listing:
        assert "comp == -1.3857E-36 + var_2" in src
        assert "+1.3305E12 / var_3" in src
        assert "cos(" in src and "sqrt(" in src

    def test_executes_on_both_platforms(self, runner):
        from repro.varity.inputs import InputVector
        from repro.varity.testcase import TestCase

        p = fig2_program()
        vec = InputVector.from_texts(
            ["+0.0", "3", "+0.0", "+2.0000", "+1.0000", "+1.0000", "+1.0000", "+1.0000", "+4.0000E3"],
            p.kernel,
        )
        rn, ra, _, _ = runner.run_single(TestCase(p, [vec]), O0, 0)
        assert rn.printed and ra.printed


class TestFig4CaseStudy:
    def test_case_study_1_reproduces(self, runner):
        """Num-vs-Num divergence at -O0, rooted in fmod (§IV-D1)."""
        rn, ra, _, _ = runner.run_single(fig4_testcase(), O0, 0)
        assert classify_pair(rn.value, ra.value) is DiscrepancyClass.NUM_NUM
        # hipcc's exact-fmod path yields the paper's published output.
        assert ra.printed == "9.3404611450291972e-306"
        # nvcc lands in the same decade but on a different value.
        assert rn.printed != ra.printed
        assert 1e-306 < rn.value < 1e-305

    def test_isolated_fmod_expression(self):
        """Fig. 4, third panel: the isolated call diverges."""
        amd = amd_fmod(FIG4_FMOD_X, FIG4_FMOD_Y)
        nv = nvidia_fmod(FIG4_FMOD_X, FIG4_FMOD_Y)
        assert amd == 7.1923082856620736e-309  # the paper's hipcc value
        assert nv != amd

    def test_other_inputs_consistent(self, runner):
        """§IV-D1: only rare inputs diverge; a benign input agrees."""
        from repro.varity.inputs import InputVector
        from repro.varity.testcase import TestCase

        t = fig4_testcase()
        benign = InputVector.from_texts(
            ["+1.0000", "2", "+1.0000", "+1.0000", "+1.0000", "+0.5000",
             "+1.0000", "+2.0000", "+3.0000", "+4.0000", "+5.0000"],
            t.program.kernel,
        )
        rn, ra, _, _ = runner.run_single(TestCase(t.program, [benign]), O0, 0)
        assert rn.printed == ra.printed


class TestFig5CaseStudy:
    def test_case_study_2_bit_exact(self, runner):
        """Inf-vs-Num at -O0 via ceil — bit-exact against the paper."""
        rn, ra, _, _ = runner.run_single(fig5_testcase(), O0, 0)
        assert rn.printed == "inf"  # paper: nvcc -O0: Inf
        assert ra.printed == "1.34887e-306"  # paper: hipcc -O0: 1.34887e-306
        assert classify_pair(rn.value, ra.value) is DiscrepancyClass.INF_NUM

    def test_isolated_ceil_expression(self):
        from repro.devices.mathlib.rounding_ops import amd_ceil, nvidia_ceil

        assert nvidia_ceil(1.5955e-125) == 0.0  # paper: nvcc → 0
        assert amd_ceil(1.5955e-125) == 1.0  # paper: hipcc → 1


class TestFig6CaseStudy:
    def test_verbatim_kernel_is_valid(self):
        assert validate_kernel(fig6_testcase().program.kernel) == []

    def test_verbatim_kernel_consistent_within_model(self, runner):
        """Pure IEEE evaluation of the Fig. 6 input yields NaN on both
        platforms at every level (see EXPERIMENTS.md for the discussion of
        the paper's published -inf)."""
        for opt in (O0, O1):
            rn, ra, _, _ = runner.run_single(fig6_testcase(), opt, 0)
            assert classify_value(rn.value) is OutcomeClass.NAN
            assert classify_value(ra.value) is OutcomeClass.NAN

    def test_engineered_case_diverges_only_under_optimization(self, runner):
        """The engineered companion: agreement at -O0, Inf-vs-NaN at -O1 —
        the paper's Case Study 3 phenomenon."""
        t = case3_engineered_testcase()
        rn0, ra0, _, _ = runner.run_single(t, O0, 0)
        assert classify_pair(rn0.value, ra0.value) is None  # consistent at O0
        rn1, ra1, _, _ = runner.run_single(t, O1, 0)
        assert classify_pair(rn1.value, ra1.value) is DiscrepancyClass.NAN_INF
        assert classify_value(rn1.value) is OutcomeClass.INF  # nvcc (fused)
        assert classify_value(ra1.value) is OutcomeClass.NAN  # hipcc (unfused)

    def test_engineered_case_mechanism_is_contraction(self, runner):
        _, _, ck_nv, ck_amd = runner.run_single(case3_engineered_testcase(), O1, 0)
        assert "fma-contract" in ck_nv.passes_applied
        assert "fma-contract" not in ck_amd.passes_applied


# ---------------------------------------------------------------------- bt
class TestBTMiniApp:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_bt_experiment(steps=40, repeats=1)

    def test_program_valid(self):
        assert validate_kernel(build_bt_program().kernel) == []

    def test_four_rows(self, rows):
        assert len(rows) == 4
        assert [r.compiler for r in rows] == ["nvcc", "nvcc", "hipcc", "hipcc"]

    def test_flags_rendered(self, rows):
        assert rows[1].options == "-O3 -use_fast_math"
        assert rows[3].options == "-O3 -DHIP_FAST_MATH"

    def test_fast_math_is_faster(self, rows):
        """Table I's headline: fast math reduces runtime per compiler."""
        assert rows[1].model_cycles < rows[0].model_cycles
        assert rows[3].model_cycles < rows[2].model_cycles

    def test_fast_math_is_less_accurate(self, rows):
        """…at the cost of error (Table I's other half).

        Error accumulation has a stochastic component (which ULP errors a
        trajectory visits), so the per-compiler comparison is ``>=`` with at
        least one compiler strictly worse.
        """
        assert rows[1].max_rel_error >= rows[0].max_rel_error
        assert rows[3].max_rel_error >= rows[2].max_rel_error
        assert (
            rows[1].max_rel_error > rows[0].max_rel_error
            or rows[3].max_rel_error > rows[2].max_rel_error
        )

    def test_errors_are_small_relative(self, rows):
        for r in rows:
            assert 0.0 <= r.max_rel_error < 1e-8

    def test_row_cells(self, rows):
        cells = rows[0].cells()
        assert cells[0] == "nvcc" and "Mcycles" in cells[2]

    def test_deterministic_values(self):
        a = run_bt_experiment(steps=10, repeats=1)
        b = run_bt_experiment(steps=10, repeats=1)
        assert [r.max_rel_error for r in a] == [r.max_rel_error for r in b]
        assert [r.model_cycles for r in a] == [r.model_cycles for r in b]


# ----------------------------------------------------------------- stencil
class TestStencil:
    def test_valid_both_precisions(self):
        for fptype in (FPType.FP64, FPType.FP32):
            p = build_stencil_program(fptype)
            assert validate_kernel(p.kernel) == []

    def test_runs_differentially(self, runner):
        from repro.varity.inputs import InputVector
        from repro.varity.testcase import TestCase

        p = build_stencil_program()
        vec = InputVector.from_texts(
            ["+0.0", "4", "+1.0000E-1", "+1.0000", "+1.0000"], p.kernel
        )
        rn, ra, _, _ = runner.run_single(TestCase(p, [vec]), O0, 0)
        assert math.isfinite(rn.value) and math.isfinite(ra.value)
