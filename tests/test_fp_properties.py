"""Property-based tests (hypothesis) for the fp layer.

The ULP line, the bit-pattern conversions, and the Varity literal format
are load-bearing for everything above them: content keys, signature
dedup, the oracle's ULP-bounded checkers, and the error-placement hash
all assume these invariants.  Hypothesis sweeps them across all three
precisions:

* bit ↔ float round trips (including NaN payloads and ±0);
* ULP distance: symmetry, identity-of-indiscernibles (with ±0
  coinciding), adjacency (= 1 between neighbours), and the triangle
  inequality that makes it a metric on the ordered-bits line;
* literal parse/format round trips at full precision per format.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bits import (
    bits_to_float,
    bits_to_float16,
    bits_to_float32,
    compose_float,
    float16_to_bits,
    float32_to_bits,
    float_to_bits,
    sign_exponent_mantissa,
)
from repro.fp.literals import format_varity_literal, parse_varity_literal
from repro.fp.types import FPType
from repro.fp.ulp import nextafter_n, ulp_distance

finite_double = st.floats(allow_nan=False, allow_infinity=False)
any_double = st.floats(allow_nan=True, allow_infinity=True)
bits64 = st.integers(min_value=0, max_value=2**64 - 1)
bits32 = st.integers(min_value=0, max_value=2**32 - 1)
bits16 = st.integers(min_value=0, max_value=2**16 - 1)

#: full-precision fractional-digit counts: 17/9/5 significant decimal
#: digits round-trip binary64/32/16 exactly.
_ROUNDTRIP_DIGITS = {FPType.FP64: 16, FPType.FP32: 8, FPType.FP16: 4}

_FPTYPES = [FPType.FP16, FPType.FP32, FPType.FP64]


# ------------------------------------------------------------------- bits
class TestBitRoundTrips:
    @given(bits64)
    @settings(max_examples=300)
    def test_bits64_roundtrip(self, bits):
        """Every 64-bit pattern survives bits → float → bits, including
        NaN payloads, -0.0, and subnormals."""
        assert float_to_bits(bits_to_float(bits)) == bits

    @given(bits32)
    @settings(max_examples=300)
    def test_bits32_roundtrip(self, bits):
        """Exact for every non-NaN pattern; NaNs stay NaN (the pack/unpack
        detour through a C double may quieten a signaling payload, which
        the models never produce)."""
        value = bits_to_float32(bits)
        if np.isnan(value):
            assert np.isnan(bits_to_float32(float32_to_bits(value)))
        else:
            assert float32_to_bits(value) == bits

    @given(bits16)
    @settings(max_examples=300)
    def test_bits16_roundtrip(self, bits):
        value = bits_to_float16(bits)
        if np.isnan(value):
            assert np.isnan(bits_to_float16(float16_to_bits(value)))
        else:
            assert float16_to_bits(value) == bits

    @given(any_double)
    @settings(max_examples=300)
    def test_float64_roundtrip(self, value):
        """float → bits → float is bit-identity (NaN-safe: compare bits)."""
        assert float_to_bits(bits_to_float(float_to_bits(value))) == float_to_bits(value)

    @given(bits64)
    @settings(max_examples=200)
    def test_fields_compose_back_64(self, bits):
        value = bits_to_float(bits)
        s, e, m = sign_exponent_mantissa(value, bits=64)
        assert float_to_bits(compose_float(s, e, m, bits=64)) == bits

    @given(bits16)
    @settings(max_examples=200)
    def test_fields_compose_back_16(self, bits):
        value = float(bits_to_float16(bits))
        if math.isnan(value):
            return  # payloads may quieten in the double detour (see above)
        s, e, m = sign_exponent_mantissa(value, bits=16)
        assert float16_to_bits(compose_float(s, e, m, bits=16)) == bits


# -------------------------------------------------------------------- ulp
def _finite_in(fptype: FPType):
    """Finite doubles that stay finite when narrowed to ``fptype``."""
    bound = fptype.max
    return st.floats(
        allow_nan=False, allow_infinity=False, min_value=-bound, max_value=bound
    )


class TestUlpDistanceMetric:
    @pytest.mark.parametrize("fptype", _FPTYPES)
    @given(data=st.data())
    @settings(max_examples=150)
    def test_symmetry(self, fptype, data):
        a = data.draw(_finite_in(fptype))
        b = data.draw(_finite_in(fptype))
        assert ulp_distance(a, b, fptype) == ulp_distance(b, a, fptype)

    @pytest.mark.parametrize("fptype", _FPTYPES)
    @given(data=st.data())
    @settings(max_examples=150)
    def test_zero_iff_same_representable(self, fptype, data):
        a = data.draw(_finite_in(fptype))
        b = data.draw(_finite_in(fptype))
        d = ulp_distance(a, b, fptype)
        na, nb = fptype.dtype.type(a), fptype.dtype.type(b)
        # ±0 coincide on the ordered line — the paper's rules never treat
        # them as different — hence == on the narrowed values, not bits.
        assert (d == 0) == (float(na) == float(nb))

    @pytest.mark.parametrize("fptype", _FPTYPES)
    @given(data=st.data())
    @settings(max_examples=100)
    def test_triangle_inequality(self, fptype, data):
        a = data.draw(_finite_in(fptype))
        b = data.draw(_finite_in(fptype))
        c = data.draw(_finite_in(fptype))
        assert ulp_distance(a, c, fptype) <= (
            ulp_distance(a, b, fptype) + ulp_distance(b, c, fptype)
        )

    @pytest.mark.parametrize("fptype", _FPTYPES)
    @given(data=st.data())
    @settings(max_examples=150)
    def test_adjacent_values_are_one_ulp_apart(self, fptype, data):
        a = data.draw(_finite_in(fptype))
        stepped = nextafter_n(a, 1, fptype)
        if np.isinf(stepped):
            return  # stepped past the top of the format
        narrowed = float(fptype.dtype.type(a))
        if narrowed == float(stepped):
            return  # a was already the top finite value
        assert ulp_distance(narrowed, float(stepped), fptype) == 1

    @pytest.mark.parametrize("fptype", _FPTYPES)
    @given(data=st.data(), n=st.integers(min_value=-64, max_value=64))
    @settings(max_examples=100)
    def test_nextafter_n_moves_exactly_n(self, fptype, data, n):
        a = data.draw(_finite_in(fptype))
        stepped = nextafter_n(a, n, fptype)
        if np.isinf(stepped) or np.isinf(fptype.dtype.type(a)):
            return  # saturated at the format boundary
        assert ulp_distance(float(fptype.dtype.type(a)), float(stepped), fptype) == abs(n)

    @given(any_double)
    @settings(max_examples=100)
    def test_nan_raises(self, a):
        if not math.isnan(a):
            a = math.nan
        with pytest.raises(ValueError):
            ulp_distance(a, 1.0)


# --------------------------------------------------------------- literals
class TestLiteralRoundTrips:
    @pytest.mark.parametrize("fptype", _FPTYPES)
    @given(data=st.data())
    @settings(max_examples=200)
    def test_parse_format_roundtrip(self, fptype, data):
        """format → parse recovers the narrowed value exactly at the
        format's full-precision digit count."""
        raw = data.draw(_finite_in(fptype))
        value = fptype.dtype.type(raw)
        if np.isinf(value):
            return  # narrowed out of range (fp16 overflow)
        text = format_varity_literal(
            float(value), fptype, digits=_ROUNDTRIP_DIGITS[fptype]
        )
        parsed = parse_varity_literal(text, fptype)
        assert parsed.dtype == fptype.dtype
        # bit-exact, including -0.0
        assert float(parsed) == float(value)
        assert math.copysign(1.0, float(parsed)) == math.copysign(1.0, float(value))

    @pytest.mark.parametrize("fptype", _FPTYPES)
    @given(data=st.data())
    @settings(max_examples=100)
    def test_format_is_stable(self, fptype, data):
        """Formatting the parsed value reproduces the text (the format is
        canonical: texts are identities, values derive from them)."""
        raw = data.draw(_finite_in(fptype))
        value = fptype.dtype.type(raw)
        if np.isinf(value):
            return
        digits = _ROUNDTRIP_DIGITS[fptype]
        text = format_varity_literal(float(value), fptype, digits=digits)
        reparsed = parse_varity_literal(text, fptype)
        assert format_varity_literal(float(reparsed), fptype, digits=digits) == text

    @pytest.mark.parametrize("fptype", _FPTYPES)
    def test_suffix_matches_precision(self, fptype):
        text = format_varity_literal(1.5, fptype)
        if fptype.literal_suffix:
            assert text.endswith(fptype.literal_suffix)
        else:
            assert not text.upper().endswith(("F", "F16"))

    def test_nan_inf_rejected(self):
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                format_varity_literal(bad)
