"""Golden-file codegen tests for the FP16 lane.

The rendered ``.cu``/``.hip`` artifacts are the campaign's external
contract: the content-keyed run store, the HIPIFY translator, and the
metadata trail all consume this exact text, so the half-precision
spellings (``__half`` vs ``_Float16``, ``F16`` literal suffixes,
``h``-suffixed math calls, the widening printf) are pinned byte-for-byte
against checked-in goldens.

Regenerate after an intentional emitter change with::

    PYTHONPATH=src python tests/test_codegen_fp16.py --regen
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.codegen.base import EmitterConfig, render_expr
from repro.codegen.cuda import render_cuda
from repro.codegen.hip import render_hip
from repro.fp.types import FPType
from repro.hipify.translator import hipify_source
from repro.ir.builder import IRBuilder
from repro.ir.nodes import Call
from repro.ir.validate import validate_kernel

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _fp16_program():
    """A small, fixed FP16 kernel touching every half-specific spelling."""
    b = IRBuilder(FPType.FP16)
    kernel = b.kernel(
        params=[
            b.fparam("comp"),
            b.iparam("var_1"),
            b.aparam("var_2"),
            b.fparam("var_3"),
        ],
        body=[
            b.decl("tmp_1", b.mul(b.lit(6.1035e-5), b.var("var_3"))),
            b.loop(
                "i",
                b.var("var_1"),
                [b.assign(b.idx("var_2", "i"), b.call("sqrt", b.var("tmp_1")))],
            ),
            b.when(
                b.cmp(">", b.var("var_3"), b.lit(0.0)),
                [b.aug("comp", "+", b.call("fmod", b.var("var_3"), b.lit(1.5e3)))],
            ),
            b.aug("comp", "*", b.call("exp", b.idx("var_2", 0))),
        ],
    )
    assert not validate_kernel(kernel)
    return b.program(kernel, program_id="golden-fp16-000000", note="golden")


class TestFP16Goldens:
    def test_cuda_golden(self):
        rendered = render_cuda(_fp16_program())
        golden = (GOLDEN_DIR / "fp16_kernel.cu").read_text(encoding="utf-8")
        assert rendered == golden

    def test_hip_golden(self):
        rendered = render_hip(_fp16_program())
        golden = (GOLDEN_DIR / "fp16_kernel.hip").read_text(encoding="utf-8")
        assert rendered == golden

    def test_cuda_spellings(self):
        src = render_cuda(_fp16_program())
        assert "#include <cuda_fp16.h>" in src
        assert "__half comp" in src and "__half* var_2" in src
        assert "hsqrt(" in src and "hfmod(" in src and "hexp(" in src
        assert "F16" in src  # literal suffix
        assert 'printf("%.17g\\n", (double)comp);' in src
        assert "_Float16" not in src

    def test_hip_spellings(self):
        src = render_hip(_fp16_program())
        assert "#include <hip/hip_fp16.h>" in src
        assert "_Float16 comp" in src and "_Float16* var_2" in src
        assert "__half" not in src

    def test_hipify_translates_cuda_golden_to_hip_spellings(self):
        """hipify-perl-style translation of the .cu text lands on the same
        half spellings the native HIP renderer emits."""
        hip = hipify_source(render_cuda(_fp16_program()), banner=False)
        assert "hip/hip_fp16.h" in hip and "_Float16" in hip
        assert "__half" not in hip and "cuda_fp16" not in hip


class TestDemoteCastRendering:
    """The precision-cast wrapper renders as a cast, per dialect."""

    @pytest.mark.parametrize(
        "fptype,dialect,expected",
        [
            (FPType.FP64, "cuda", "(double)(__half)(var_2)"),
            (FPType.FP64, "hip", "(double)(_Float16)(var_2)"),
            (FPType.FP32, "cuda", "(float)(__half)(var_2)"),
            (FPType.FP32, "c", "(float)(_Float16)(var_2)"),
        ],
    )
    def test_rendering(self, fptype, dialect, expected):
        cfg = EmitterConfig(fptype=fptype, dialect=dialect)
        expr = Call("__demote_fp16", [IRBuilder(fptype).var("var_2")])
        assert render_expr(expr, cfg) == expected

    def test_demote_in_wider_kernel_pulls_fp16_header(self):
        """A precision-cast mutant in an FP64 kernel references the half
        type, so the rendered artifacts must include the fp16 headers to
        stand alone."""
        b = IRBuilder(FPType.FP64)
        kernel = b.kernel(
            params=[b.fparam("comp"), b.fparam("var_2")],
            body=[b.aug("comp", "+", Call("__demote_fp16", [b.var("var_2")]))],
        )
        prog = b.program(kernel, program_id="demote-fp64")
        cu = render_cuda(prog)
        hip = render_hip(prog)
        assert "#include <cuda_fp16.h>" in cu and "(double)(__half)(var_2)" in cu
        assert "#include <hip/hip_fp16.h>" in hip and "(double)(_Float16)(var_2)" in hip
        # A plain FP64 kernel stays header-free.
        plain = b.program(
            b.kernel(params=[b.fparam("comp")], body=[b.aug("comp", "+", b.lit(1.0))]),
            program_id="plain-fp64",
        )
        assert "fp16" not in render_cuda(plain)


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    program = _fp16_program()
    (GOLDEN_DIR / "fp16_kernel.cu").write_text(render_cuda(program), encoding="utf-8")
    (GOLDEN_DIR / "fp16_kernel.hip").write_text(render_hip(program), encoding="utf-8")
    print(f"regenerated goldens under {GOLDEN_DIR}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
