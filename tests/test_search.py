"""Integration tests for ``--search mcts``: format-5 ledgers, worker
invariance, interrupt/resume equivalence, and back-compat of every older
ledger format against the new engine.

The golden ledgers under ``tests/goldens/`` were written by the engine
*before* the search layer landed (PR 9's bandit scheduler):

* ``fuzz_bandit_ledger.jsonl`` — the TINY config, format 2;
* ``fuzz_bandit_format4.jsonl`` — TINY on the (nvcc, cpu) stack pair
  with a 10-mutant budget, format 4.

``--search bandit`` (the default) must keep producing those exact bytes,
and both goldens must resume untouched — the search layer is strictly
additive to the on-disk contract.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import shutil

import pytest

from repro.errors import HarnessError
from repro.fuzz.engine import FuzzConfig, run_fuzz
from repro.fuzz.ledger import LineageStep, SearchTrace

GOLDENS = pathlib.Path(__file__).parent / "goldens"

TINY = FuzzConfig(
    seed=11,
    n_seed_programs=15,
    inputs_per_program=2,
    max_mutants=30,
    batch_size=10,
    minimize=False,
)
MCTS = dataclasses.replace(TINY, search="mcts")
FORMAT4 = dataclasses.replace(TINY, stacks=("nvcc", "cpu"), max_mutants=10)


@pytest.fixture(scope="module")
def mcts_session(tmp_path_factory):
    """One straight (uninterrupted, serial) mcts session; the reference
    every invariance test compares against."""
    path = tmp_path_factory.mktemp("mcts") / "ledger.jsonl"
    result = run_fuzz(MCTS, ledger=path)
    return result, path


class TestFingerprintGating:
    def test_bandit_fingerprint_has_no_search_key(self):
        fp = TINY.fingerprint()
        assert "search" not in fp
        assert fp["format"] == 2

    def test_mcts_fingerprint_is_format5(self):
        fp = MCTS.fingerprint()
        assert fp["format"] == 5
        assert fp["search"] == "mcts"

    def test_format4_config_stays_format4(self):
        fp = FORMAT4.fingerprint()
        assert fp["format"] == 4
        assert "search" not in fp

    def test_unknown_strategy_rejected(self):
        with pytest.raises(HarnessError):
            FuzzConfig(search="genetic")


class TestSearchTrace:
    def test_round_trip(self):
        trace = SearchTrace(
            iteration=7,
            corpus_index=3,
            lineage=(
                LineageStep(mutation="swap-operator", seed=99),
                LineageStep(mutation="graft-subexpr", seed=12, donor_index=4),
            ),
            reward=0.5,
        )
        assert SearchTrace.from_json(trace.to_json()) == trace

    def test_empty_lineage_round_trip(self):
        trace = SearchTrace(iteration=0, corpus_index=15, lineage=(), reward=0.0)
        assert SearchTrace.from_json(trace.to_json()) == trace


class TestMctsLedger:
    def test_header_and_batches_carry_format5(self, mcts_session):
        _, path = mcts_session
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["fingerprint"]["format"] == 5
        assert lines[0]["fingerprint"]["search"] == "mcts"
        batches = [rec for rec in lines if rec["kind"] == "batch"]
        assert batches
        assert all("search" in rec for rec in batches)
        assert any(rec["search"] for rec in batches)

    def test_rerun_is_byte_identical(self, mcts_session, tmp_path):
        _, path = mcts_session
        again = tmp_path / "again.jsonl"
        run_fuzz(MCTS, ledger=again)
        assert again.read_bytes() == path.read_bytes()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_ledger_worker_invariant(self, mcts_session, tmp_path, workers):
        """The acceptance bar: mcts ledger bytes identical at workers
        0/2/4 — speculative prepares that get invalidated must leave no
        trace in the tree."""
        _, path = mcts_session
        pooled = tmp_path / f"pooled{workers}.jsonl"
        run_fuzz(dataclasses.replace(MCTS, workers=workers), ledger=pooled)
        assert pooled.read_bytes() == path.read_bytes()

    def test_killed_mid_session_resume_byte_identical(
        self, mcts_session, tmp_path
    ):
        """Kill after two complete batches (plus a torn partial line),
        resume: the replayed tree must steer iterations 20..29 exactly
        as the uninterrupted run did — bytes and tree statistics equal."""
        straight, path = mcts_session
        split = tmp_path / "split.jsonl"
        kept = path.read_text().splitlines(keepends=True)[:4]
        split.write_text("".join(kept) + '{"type": "batch", "start": 20')
        resumed = run_fuzz(MCTS, ledger=split, resume=True)
        assert resumed.resumed_iterations == 20
        assert split.read_bytes() == path.read_bytes()
        assert resumed.search_stats == straight.search_stats
        assert resumed.coverage == straight.coverage

    def test_search_stats_and_coverage_populated(self, mcts_session):
        result, _ = mcts_session
        assert result.search_stats["nodes"] > 0
        # every seed child and the explore arm carry a prior visit; each
        # of the 30 iterations then bumps the root exactly once.
        assert (
            result.search_stats["root_visits"]
            == TINY.max_mutants + TINY.n_seed_programs + 1
        )
        assert result.coverage["features"] > 0
        assert result.coverage["counts"]
        assert result.findings

    def test_mcts_ledger_refused_by_bandit_config(self, mcts_session, tmp_path):
        """A format-5 trajectory cannot be continued by the bandit (its
        scheduler would disagree); strict resume reports the mismatch."""
        _, path = mcts_session
        copy = tmp_path / "copy.jsonl"
        shutil.copy(path, copy)
        with pytest.raises(HarnessError):
            run_fuzz(TINY, ledger=copy, resume=True)


class TestBackCompat:
    def test_bandit_default_matches_pr9_golden(self, tmp_path):
        """``--search bandit`` stays the byte-identical default: the new
        engine reproduces the pre-search golden ledger exactly."""
        fresh = tmp_path / "bandit.jsonl"
        run_fuzz(TINY, ledger=fresh)
        assert fresh.read_bytes() == (GOLDENS / "fuzz_bandit_ledger.jsonl").read_bytes()

    def test_bandit_golden_refused_by_mcts_config(self, tmp_path):
        copy = tmp_path / "bandit.jsonl"
        shutil.copy(GOLDENS / "fuzz_bandit_ledger.jsonl", copy)
        with pytest.raises(HarnessError):
            run_fuzz(MCTS, ledger=copy, resume=True)

    def test_format4_golden_resumes_untouched(self, tmp_path):
        """A pre-search format-4 ledger (non-default stack pair) resumes
        under the new engine without a byte rewritten and without its
        fingerprint migrating to format 5."""
        golden = (GOLDENS / "fuzz_bandit_format4.jsonl").read_bytes()
        copy = tmp_path / "fmt4.jsonl"
        copy.write_bytes(golden)
        resumed = run_fuzz(FORMAT4, ledger=copy, resume=True)
        assert resumed.resumed_iterations == FORMAT4.max_mutants
        assert copy.read_bytes() == golden
        header = json.loads(golden.decode().splitlines()[0])
        assert header["fingerprint"]["format"] == 4

    def test_format2_golden_extends_under_new_engine(self, tmp_path):
        """Raising the budget on a pre-search ledger appends new batches
        behind the same format-2 header — no search key ever appears."""
        copy = tmp_path / "fmt2.jsonl"
        shutil.copy(GOLDENS / "fuzz_bandit_ledger.jsonl", copy)
        grown = dataclasses.replace(TINY, max_mutants=40)
        resumed = run_fuzz(grown, ledger=copy, resume=True)
        assert resumed.resumed_iterations == TINY.max_mutants
        assert resumed.iterations == 40
        lines = [json.loads(line) for line in copy.read_text().splitlines()]
        assert lines[0]["fingerprint"]["format"] == 2
        assert all("search" not in rec for rec in lines if rec["kind"] == "batch")
