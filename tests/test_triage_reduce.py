"""Tests for the automated debugging tools (triage + reduction).

These implement the paper's §VII future work, so the tests pin down the
behaviour on the paper's own case studies: Fig. 4 must triage to
``math-library via fmod`` and reduce to a kernel that still contains the
divergent ``fmod``; Fig. 5 to ``ceil``; the engineered Case-Study-3 kernel
to ``optimization-induced`` with the contraction pass implicated.
"""

from __future__ import annotations

import pytest

from repro.analysis.reduce import kernel_size, reduce_testcase
from repro.analysis.triage import (
    Cause,
    triage_discrepancy,
    triage_table,
    triage_tests,
)
from repro.apps.paper_kernels import (
    case3_engineered_testcase,
    fig4_testcase,
    fig5_testcase,
)
from repro.compilers.options import OptLevel, OptSetting
from repro.harness.differential import classify_pair
from repro.ir.nodes import Call
from repro.ir.visitor import collect

O0 = OptSetting(OptLevel.O0)
O1 = OptSetting(OptLevel.O1)
O3_FM = OptSetting(OptLevel.O3, fast_math=True)


class TestTriage:
    def test_fig4_attributed_to_fmod(self, runner):
        v = triage_discrepancy(runner, fig4_testcase(), O0, 0)
        assert v.cause == Cause.MATH_LIBRARY
        assert "fmod" in v.functions

    def test_fig5_attributed_to_ceil(self, runner):
        v = triage_discrepancy(runner, fig5_testcase(), O0, 0)
        assert v.cause == Cause.MATH_LIBRARY
        assert "ceil" in v.functions

    def test_case3_attributed_to_optimization(self, runner):
        v = triage_discrepancy(runner, case3_engineered_testcase(), O1, 0)
        assert v.cause == Cause.OPTIMIZATION
        assert "fma-contract" in set(v.nvcc_passes) ^ set(v.hipcc_passes)

    def test_describe_is_informative(self, runner):
        v = triage_discrepancy(runner, fig4_testcase(), O0, 0)
        text = v.describe()
        assert "math-library" in text and "fmod" in text

    def test_triage_batch_over_campaign(self, runner):
        """Campaign discrepancies triage without error and mostly resolve."""
        from repro.harness.campaign import CampaignConfig, run_campaign
        from repro.varity.corpus import build_corpus

        config = CampaignConfig(
            seed=31, n_programs_fp64=60, inputs_per_program=3,
            include_hipify=False, include_fp32=False,
        )
        result = run_campaign(config)
        arm = result.arms["fp64"]
        if not arm.discrepancies:
            pytest.skip("no discrepancies at this scale")
        corpus = build_corpus(
            config.generator_config(config.arm_fptype("fp64")),
            config.n_programs_fp64,
            config.arm_seed("fp64"),
        )
        tests_by_id = {t.test_id: t for t in corpus}
        verdicts = triage_tests(runner, tests_by_id, arm.discrepancies, limit=10)
        assert verdicts
        resolved = [v for v in verdicts if v.cause != Cause.UNKNOWN]
        # The model has exactly five mechanisms, all probed; nearly all
        # discrepancies must resolve.
        assert len(resolved) >= 0.7 * len(verdicts)

    def test_table_renders(self, runner):
        verdicts = [
            triage_discrepancy(runner, fig4_testcase(), O0, 0),
            triage_discrepancy(runner, fig5_testcase(), O0, 0),
        ]
        text = triage_table(verdicts).render()
        assert "math-library" in text

    def test_limit_zero_triages_nothing(self, runner):
        """``limit=0`` must mean "none", not fall through to "all"."""
        from repro.harness.differential import Discrepancy, classify_pair
        from repro.harness.runner import DifferentialRunner

        test = fig4_testcase()
        rn, ra, _, _ = runner.run_single(test, O0, 0)
        d = Discrepancy(
            test_id=test.test_id,
            input_index=0,
            opt_label="O0",
            dclass=classify_pair(rn.value, ra.value),
            nvcc_printed=rn.printed,
            hipcc_printed=ra.printed,
            nvcc_outcome=rn.outcome,
            hipcc_outcome=ra.outcome,
        )
        tests_by_id = {test.test_id: test}
        assert triage_tests(runner, tests_by_id, [d], limit=0) == []
        assert len(triage_tests(runner, tests_by_id, [d], limit=None)) == 1

    def test_table_counts_functions_per_cause(self, runner):
        """A function implicated under one cause must not inflate another
        cause's row (counts used to be computed globally)."""
        from repro.analysis.triage import Cause, TriageVerdict

        verdicts = [
            TriageVerdict("t1", 0, "O0", Cause.MATH_LIBRARY, functions=("fmod",)),
            TriageVerdict("t2", 0, "O0", Cause.MATH_LIBRARY, functions=("fmod",)),
            TriageVerdict("t3", 0, "O3_FM", Cause.FAST_MATH_LIBRARY, functions=("fmod",)),
        ]
        rows = triage_table(verdicts).rows
        by_cause = {row[0]: row[2] for row in rows}
        assert by_cause[Cause.MATH_LIBRARY] == "fmod×2"
        assert by_cause[Cause.FAST_MATH_LIBRARY] == "fmod×1"


class TestReduction:
    def test_fig4_reduces_dramatically(self, runner):
        result = reduce_testcase(fig4_testcase(), O0, 0, runner=runner)
        assert result.reduced_size < result.original_size / 3
        # The reduced kernel still contains the culprit call...
        calls = [
            n
            for stmt in result.reduced.program.kernel.body
            for n in collect(stmt, lambda x: isinstance(x, Call))
        ]
        assert any(c.func == "fmod" for c in calls)
        # ...and still shows the same discrepancy class.
        rn, ra, _, _ = runner.run_single(result.reduced, O0, 0)
        assert classify_pair(rn.value, ra.value) is result.dclass

    def test_fig5_already_minimal(self, runner):
        result = reduce_testcase(fig5_testcase(), O0, 0, runner=runner)
        # Fig. 5 is a 2-statement kernel; reduction cannot break it and
        # must keep the divergence.
        rn, ra, _, _ = runner.run_single(result.reduced, O0, 0)
        assert classify_pair(rn.value, ra.value) is result.dclass
        assert result.reduced_size <= result.original_size

    def test_case3_reduction_keeps_opt_divergence(self, runner):
        result = reduce_testcase(case3_engineered_testcase(), O1, 0, runner=runner)
        rn, ra, _, _ = runner.run_single(result.reduced, O1, 0)
        assert classify_pair(rn.value, ra.value) is result.dclass

    def test_unused_params_pruned(self, runner):
        result = reduce_testcase(fig4_testcase(), O0, 0, runner=runner)
        kernel = result.reduced.program.kernel
        from repro.analysis.reduce import _used_names

        used = _used_names(kernel)
        for p in kernel.params[1:]:  # comp always stays
            assert p.name in used
        # inputs stayed aligned
        for vec in result.reduced.inputs:
            assert len(vec.values) == len(kernel.params)

    def test_non_divergent_test_rejected(self, runner, small_fp64_corpus):
        # Find a consistent (test, input) pair and expect a ValueError.
        for test in small_fp64_corpus:
            rn, ra, _, _ = runner.run_single(test, O0, 0)
            if classify_pair(rn.value, ra.value) is None:
                with pytest.raises(ValueError):
                    reduce_testcase(test, O0, 0, runner=runner)
                return
        pytest.skip("every test diverged (unexpected at this scale)")

    def test_kernel_size_metric(self):
        t = fig5_testcase()
        assert kernel_size(t.program.kernel) > 0

    def test_reduced_program_is_renderable(self, runner):
        from repro.codegen.cuda import render_cuda
        from repro.hipify.translator import hipify_source

        result = reduce_testcase(fig4_testcase(), O0, 0, runner=runner)
        src = render_cuda(result.reduced.program)
        assert "__global__" in src
        hipify_source(src)  # must translate cleanly too
