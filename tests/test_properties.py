"""Property-based tests over core invariants (hypothesis-heavy).

These are the cross-cutting properties the library's correctness rests on:
deterministic generation, compile purity, execution determinism, taxonomy
totality, and the exactness guarantees of the math models.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.compilers.options import OptLevel, OptSetting, PAPER_OPT_SETTINGS
from repro.devices.amd import amd_mi250x
from repro.devices.mathlib.fmod import fmod_chunked_reduction, fmod_exact
from repro.devices.mathlib.rounding_ops import amd_ceil, nvidia_ceil
from repro.devices.nvidia import nvidia_v100
from repro.errors import TrapError
from repro.fp.classify import OutcomeClass, classify_value, outcomes_equivalent
from repro.fp.types import FPType
from repro.harness.differential import classify_pair
from repro.ir.validate import validate_kernel
from repro.ir.visitor import walk
from repro.varity.config import GeneratorConfig
from repro.varity.generator import ProgramGenerator
from repro.varity.inputs import InputGenerator

any_double = st.floats(allow_nan=True, allow_infinity=True)
finite_double = st.floats(allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)

_slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ------------------------------------------------------------- taxonomy
class TestTaxonomyProperties:
    @given(any_double, any_double)
    @settings(max_examples=300)
    def test_classification_total_and_consistent(self, a, b):
        """Every pair is either equivalent or falls in exactly one class."""
        d = classify_pair(a, b)
        if outcomes_equivalent(a, b):
            assert d is None
        else:
            assert d is not None

    @given(any_double, any_double)
    @settings(max_examples=300)
    def test_classification_symmetric(self, a, b):
        assert classify_pair(a, b) is classify_pair(b, a)

    @given(any_double)
    @settings(max_examples=200)
    def test_equivalence_reflexive_all_values(self, a):
        assert outcomes_equivalent(a, a)

    @given(any_double)
    def test_classify_total(self, a):
        assert classify_value(a) in OutcomeClass


# ------------------------------------------------------------- generator
class TestGeneratorProperties:
    @given(seeds)
    @_slow
    def test_generation_deterministic(self, seed):
        gen = ProgramGenerator(GeneratorConfig.fp64())
        assert gen.generate(seed).kernel == gen.generate(seed).kernel

    @given(seeds)
    @_slow
    def test_generated_programs_valid(self, seed):
        for cfg in (GeneratorConfig.fp64(), GeneratorConfig.fp32()):
            assert validate_kernel(ProgramGenerator(cfg).generate(seed).kernel) == []

    @given(seeds)
    @_slow
    def test_inputs_deterministic_and_aligned(self, seed):
        cfg = GeneratorConfig.fp64()
        program = ProgramGenerator(cfg).generate(seed)
        gen = InputGenerator(cfg)
        a = gen.generate(program.kernel, seed)
        b = gen.generate(program.kernel, seed)
        assert a.texts == b.texts
        assert len(a.values) == len(program.kernel.params)


# --------------------------------------------------------------- compilers
class TestCompilerProperties:
    @given(seeds)
    @_slow
    def test_compilation_pure(self, seed):
        """Compiling twice yields structurally identical kernels."""
        program = ProgramGenerator(GeneratorConfig.fp64()).generate(seed)
        for compiler in (NvccCompiler(), HipccCompiler()):
            for opt in PAPER_OPT_SETTINGS:
                assert compiler.compile(program, opt).kernel == compiler.compile(program, opt).kernel

    @given(seeds)
    @_slow
    def test_compiled_kernels_still_valid(self, seed):
        program = ProgramGenerator(GeneratorConfig.fp32()).generate(seed)
        for compiler in (NvccCompiler(), HipccCompiler()):
            for opt in PAPER_OPT_SETTINGS:
                compiled = compiler.compile(program, opt)
                # __fdividef etc. are legal: validation without allowlist.
                assert validate_kernel(compiled.kernel) == []


# -------------------------------------------------------------- execution
class TestExecutionProperties:
    @given(seeds)
    @_slow
    def test_execution_deterministic(self, seed):
        cfg = GeneratorConfig.fp64()
        program = ProgramGenerator(cfg).generate(seed)
        vec = InputGenerator(cfg).generate(program.kernel, seed)
        device = nvidia_v100()
        compiled = NvccCompiler().compile(program, OptSetting(OptLevel.O0))
        try:
            a = device.execute(compiled, vec.values)
            b = device.execute(compiled, vec.values)
        except TrapError:
            return
        assert a.printed == b.printed
        assert a.cost_cycles == b.cost_cycles

    @given(seeds)
    @_slow
    def test_both_platforms_always_produce_output(self, seed):
        """No generated test crashes either platform (total semantics)."""
        cfg = GeneratorConfig.fp64()
        program = ProgramGenerator(cfg).generate(seed)
        vec = InputGenerator(cfg).generate(program.kernel, seed)
        nvcc, hipcc = NvccCompiler(), HipccCompiler()
        nv, amd = nvidia_v100(), amd_mi250x()
        for opt in (OptSetting(OptLevel.O0), OptSetting(OptLevel.O3, fast_math=True)):
            try:
                rn = nv.execute(nvcc.compile(program, opt), vec.values)
                ra = amd.execute(hipcc.compile(program, opt), vec.values)
            except TrapError:
                continue
            assert rn.printed != "" and ra.printed != ""

    @given(seeds)
    @_slow
    def test_fp64_o0_mostly_consistent(self, seed):
        """Divergence must stay the exception, not the rule (paper: ~1%)."""
        cfg = GeneratorConfig.fp64()
        program = ProgramGenerator(cfg).generate(seed)
        vec = InputGenerator(cfg).generate(program.kernel, seed + 1)
        try:
            rn = nvidia_v100().execute(
                NvccCompiler().compile(program, OptSetting(OptLevel.O0)), vec.values
            )
            ra = amd_mi250x().execute(
                HipccCompiler().compile(program, OptSetting(OptLevel.O0)), vec.values
            )
        except TrapError:
            return
        # Statistical property enforced in test_integration; here only the
        # hard invariant: outputs parse and classify.
        assert classify_value(rn.value) in OutcomeClass
        assert classify_value(ra.value) in OutcomeClass


# -------------------------------------------------------------- math models
class TestMathModelProperties:
    @given(finite_double, finite_double)
    @settings(max_examples=400)
    def test_fmod_models_return_valid_remainders(self, x, y):
        if y == 0.0 or math.isinf(x):
            return
        for f in (fmod_exact, fmod_chunked_reduction):
            r = f(x, y)
            if math.isnan(r):
                continue
            assert abs(r) < abs(y) or abs(x) < abs(y)
            if r != 0.0 and x != 0.0:
                assert math.copysign(1.0, r) == math.copysign(1.0, x)

    @given(finite_double)
    @settings(max_examples=400)
    def test_ceil_models_bound_below(self, x):
        """Both ceil models return a value ≥ x - except the documented
        NVIDIA quirk, which only ever errs on tiny positives (returning 0)."""
        a = amd_ceil(x)
        n = nvidia_ceil(x)
        assert a >= x
        assert a == math.ceil(x)
        if n != a:
            assert 0.0 < x < 2.0**-54 and n == 0.0

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=300)
    def test_ceil_idempotent(self, x):
        assert nvidia_ceil(nvidia_ceil(x)) == nvidia_ceil(x)

    @given(finite_double, finite_double)
    @settings(max_examples=200)
    def test_vendor_libraries_deterministic(self, x, y):
        from repro.devices.mathlib.libdevice import LibdeviceMath

        lib = LibdeviceMath()
        a = lib.call("pow", [x, y], FPType.FP64)
        b = lib.call("pow", [x, y], FPType.FP64)
        assert a == b or (math.isnan(a) and math.isnan(b))
