"""Golden-file codegen tests for the plain-C dialect (the ``cpu`` stack).

Since the stack registry landed, the ``.c`` renderer is an *executed*
dialect: the ``cpu`` stack's clang fast-math compiler model runs this
exact text's IR through the interpreter, and the rendered source feeds
content keys and metadata trails just like the ``.cu``/``.hip``
dialects.  So its spellings (``double``/``float``/``_Float16`` types,
plain libm call names, the host-build ``main`` scaffold) are pinned
byte-for-byte against checked-in goldens, one per precision lane.

Regenerate after an intentional emitter change with::

    PYTHONPATH=src python tests/test_codegen_c.py --regen
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.codegen.c import render_c
from repro.fp.types import FPType
from repro.ir.builder import IRBuilder
from repro.ir.validate import validate_kernel

GOLDEN_DIR = Path(__file__).parent / "goldens"

GOLDENS = {
    FPType.FP64: "cpu_kernel_fp64.c",
    FPType.FP32: "cpu_kernel_fp32.c",
    FPType.FP16: "cpu_kernel_fp16.c",
}


def _program(fptype: FPType):
    """A small, fixed kernel touching every C-dialect spelling: scalar,
    int, and array parameters, a loop, a guarded augmentation, and math
    calls that exercise the precision markers (bare ``sqrt`` at fp64,
    ``sqrtf`` at fp32, ``hsqrt`` at fp16 — shared with the GPU dialects
    via :class:`repro.codegen.base.EmitterConfig`)."""
    b = IRBuilder(fptype)
    kernel = b.kernel(
        params=[
            b.fparam("comp"),
            b.iparam("var_1"),
            b.aparam("var_2"),
            b.fparam("var_3"),
        ],
        body=[
            b.decl("tmp_1", b.mul(b.lit(6.1035e-5), b.var("var_3"))),
            b.loop(
                "i",
                b.var("var_1"),
                [b.assign(b.idx("var_2", "i"), b.call("sqrt", b.var("tmp_1")))],
            ),
            b.when(
                b.cmp(">", b.var("var_3"), b.lit(0.0)),
                [b.aug("comp", "+", b.call("fmod", b.var("var_3"), b.lit(1.5e3)))],
            ),
            b.aug("comp", "*", b.call("exp", b.idx("var_2", 0))),
        ],
    )
    assert not validate_kernel(kernel)
    return b.program(
        kernel, program_id=f"golden-c-{fptype.value}-000000", note="golden"
    )


class TestCGoldens:
    @pytest.mark.parametrize("fptype", list(GOLDENS))
    def test_golden(self, fptype):
        rendered = render_c(_program(fptype))
        golden = (GOLDEN_DIR / GOLDENS[fptype]).read_text(encoding="utf-8")
        assert rendered == golden

    def test_fp64_spellings(self):
        src = render_c(_program(FPType.FP64))
        assert "double comp" in src and "double* var_2" in src
        assert "sqrt(" in src and "fmod(" in src and "exp(" in src
        # Host build, not a device dialect.
        assert "__global__" not in src and "cuda" not in src and "hip" not in src

    def test_fp32_spellings(self):
        src = render_c(_program(FPType.FP32))
        assert "float comp" in src and "float* var_2" in src
        assert "sqrtf(" in src and "fmodf(" in src and "expf(" in src
        assert "double" not in src

    def test_fp16_spellings(self):
        src = render_c(_program(FPType.FP16))
        # Plain C spells half precision _Float16 (C23), like HIP.
        assert "_Float16 comp" in src and "_Float16* var_2" in src
        assert "__half" not in src

    def test_scaffold_is_self_contained(self):
        """The host-build main must parse argv, allocate arrays, call the
        kernel, and free — a compilable standalone test file."""
        src = render_c(_program(FPType.FP64))
        assert "#include <math.h>" in src
        assert "int main(int argc, char** argv)" in src
        assert "atoi(argv[1])" not in src  # comp is a float param
        assert "malloc(" in src and "free(var_2);" in src


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for fptype, name in GOLDENS.items():
        (GOLDEN_DIR / name).write_text(render_c(_program(fptype)), encoding="utf-8")
    print(f"regenerated goldens under {GOLDEN_DIR}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
