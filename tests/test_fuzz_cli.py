"""Tests for the ``repro-fuzz`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.fp.types import FPType
from repro.fuzz.cli import _config_from_args, build_parser, main
from repro.fuzz.mutators import MUTATION_NAMES


def _config(argv):
    parser = build_parser()
    return _config_from_args(parser, parser.parse_args(argv))


class TestConfigFromArgs:
    def test_defaults(self):
        config = _config([])
        assert config.fptype is FPType.FP32
        assert config.max_mutants == 200
        assert config.mutations == MUTATION_NAMES

    def test_overrides_apply(self):
        config = _config(
            ["--fptype", "fp64", "--seed-programs", "7", "--inputs", "2",
             "--mutants", "9", "--batch", "3", "--no-hipify", "--no-minimize"]
        )
        assert config.fptype is FPType.FP64
        assert config.n_seed_programs == 7
        assert config.inputs_per_program == 2
        assert config.max_mutants == 9
        assert config.batch_size == 3
        assert not config.include_hipify and not config.minimize

    def test_mutation_subset(self):
        config = _config(["--mutations", "op-swap, splice"])
        assert config.mutations == ("op-swap", "splice")

    def test_fp16_lane(self):
        config = _config(["--fptype", "fp16"])
        assert config.fptype is FPType.FP16

    def test_precision_cast_selectable(self):
        config = _config(["--mutations", "precision-cast"])
        assert config.mutations == ("precision-cast",)

    @pytest.mark.parametrize(
        "argv",
        [
            ["--seed-programs", "0"],
            ["--inputs", "0"],
            ["--mutants", "-1"],
            ["--batch", "0"],
            ["--max-seconds", "0"],
            ["--mutations", "rot13"],
            ["--mutations", ","],
            ["--resume"],
        ],
    )
    def test_bad_arguments_rejected(self, argv):
        with pytest.raises(SystemExit):
            _config(argv)

    def test_explicit_zero_mutants_honored(self):
        # 0 is a legal budget (report-only resume), not a falsy fallback.
        assert _config(["--mutants", "0"]).max_mutants == 0


class TestMainEndToEnd:
    def test_session_resume_and_report(self, tmp_path, capsys):
        ledger = tmp_path / "findings.jsonl"
        argv = [
            "--seed", "11", "--seed-programs", "12", "--inputs", "2",
            "--mutants", "15", "--batch", "5", "--no-minimize",
            "--ledger", str(ledger),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "fuzz session: 15 iterations" in out
        first = [json.loads(l) for l in ledger.read_text().splitlines()]

        assert main(argv + ["--resume", "--report"]) == 0
        out = capsys.readouterr().out
        assert "Signature histogram" in out
        resumed = [json.loads(l) for l in ledger.read_text().splitlines()]
        # A finished session resumes as a no-op: no new batch lines.
        assert resumed == first

    def test_mismatched_resume_fails_cleanly(self, tmp_path, capsys):
        ledger = tmp_path / "findings.jsonl"
        base = ["--seed-programs", "8", "--inputs", "2", "--mutants", "5",
                "--no-minimize", "--ledger", str(ledger)]
        assert main(["--seed", "1"] + base) == 0
        capsys.readouterr()
        assert main(["--seed", "2"] + base + ["--resume"]) == 2
        assert "refusing to resume" in capsys.readouterr().err
