"""Batched-execution tests (the PR 9 acceptance criteria).

The hard invariant under test: routing execution through
``run_batch``/``execute_batch`` and compilation through the
:class:`~repro.exec.artifacts.ArtifactCache` changes *nothing
observable* — every printed value, flag snapshot, outcome class, step
count, and ledger byte is identical to the per-row scalar reference, at
every worker count.
"""

from __future__ import annotations

import dataclasses
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compilers.hipcc import HipccCompiler
from repro.compilers.nvcc import NvccCompiler
from repro.compilers.options import OptLevel, OptSetting, PAPER_OPT_SETTINGS
from repro.devices.batch import (
    SMALL_N,
    batch_stats,
    reset_batch_stats,
    run_batch,
    vectorizable,
)
from repro.errors import TrapError
from repro.exec import (
    ArtifactCache,
    CachePolicy,
    DerivedTestSpec,
    ExecutionService,
    ProcessPoolBackend,
    RunStore,
    SerialBackend,
    SweepRequest,
)
from repro.exec.units import RunnerSpec
from repro.fuzz.engine import FuzzConfig, run_fuzz
from repro.harness.runner import DifferentialRunner
from repro.stacks import STACK_NAMES, get_stack
from repro.varity.config import GeneratorConfig
from repro.varity.corpus import build_corpus
from repro.varity.generator import ProgramGenerator
from repro.varity.inputs import InputGenerator

seeds = st.integers(min_value=0, max_value=2**31 - 1)
_slow = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CONFIGS = {
    "fp64": GeneratorConfig.fp64,
    "fp32": GeneratorConfig.fp32,
    "fp16": GeneratorConfig.fp16,
}
OPTS2 = (OptSetting(OptLevel.O0), OptSetting(OptLevel.O3, fast_math=True))


def _sig(result):
    """Everything observable about one run, with NaN-sign-exact value bits."""
    if result is None:
        return None
    return (
        result.printed,
        struct.pack("<d", result.value),
        result.outcome,
        dict(result.flags),
        result.steps,
        result.cost_cycles,
    )


def _reference(device, compiled, rows):
    out = []
    for row in rows:
        try:
            out.append(device.execute(compiled, row))
        except TrapError:
            out.append(None)
    return out


def _rows(cfg, kernel, seed, n):
    gen = InputGenerator(cfg)
    return [gen.generate(kernel, seed + i).values for i in range(n)]


# ----------------------------------------------------------- bit equality
class TestBatchBitEquality:
    @given(seed=seeds, lane=st.sampled_from(sorted(CONFIGS)))
    @_slow
    def test_run_batch_matches_scalar_rows(self, seed, lane):
        """run_batch == row-by-row run, bit for bit, on every stack."""
        cfg = CONFIGS[lane]()
        program = ProgramGenerator(cfg).generate(seed)
        rows = _rows(cfg, program.kernel, seed, 4)
        for name in STACK_NAMES:
            stack = get_stack(name)
            device, compiler = stack.device(), stack.compiler()
            for opt in OPTS2:
                compiled = compiler.compile(program, opt)
                batch = device.execute_batch(compiled, rows)
                expected = _reference(device, compiled, rows)
                assert [_sig(r) for r in batch] == [_sig(r) for r in expected]

    def test_large_lane_takes_vector_path(self):
        """Above SMALL_N the vectorized observe/flush mode engages and
        still matches the scalar reference exactly."""
        cfg = GeneratorConfig.fp32()
        stack = get_stack("nvcc")
        device, compiler = stack.device(), stack.compiler()
        n = SMALL_N * 2 + 8
        checked = 0
        for seed in range(6):
            program = ProgramGenerator(cfg).generate(seed)
            if not vectorizable(program.kernel):
                continue
            rows = _rows(cfg, program.kernel, seed, n)
            for opt in PAPER_OPT_SETTINGS:
                compiled = compiler.compile(program, opt)
                reset_batch_stats()
                batch = device.execute_batch(compiled, rows)
                stats = batch_stats()
                assert stats["vector_batches"] == 1 and stats["vector_rows"] == n
                expected = _reference(device, compiled, rows)
                assert [_sig(r) for r in batch] == [_sig(r) for r in expected]
                checked += 1
        assert checked > 0

    def test_trapped_rows_are_none(self):
        """A step budget small enough to trap every row yields all-None,
        exactly like the scalar loop."""
        cfg = GeneratorConfig.fp32()
        program = ProgramGenerator(cfg).generate(3)
        rows = _rows(cfg, program.kernel, 3, 3)
        device = get_stack("nvcc").device()
        compiled = NvccCompiler().compile(program, OPTS2[0])
        tiny = dataclasses.replace(compiled.exec_options, max_steps=1)
        batch = run_batch(device.interpreter, compiled.kernel, rows, tiny)
        assert batch == [None, None, None]

    def test_trace_options_fall_back_to_scalar(self):
        """Trace mode cannot vectorize: the fallback loop runs and the
        results carry traces."""
        cfg = GeneratorConfig.fp32()
        program = ProgramGenerator(cfg).generate(1)
        rows = _rows(cfg, program.kernel, 1, 3)
        device = get_stack("nvcc").device()
        compiled = NvccCompiler().compile(program, OPTS2[0])
        traced = dataclasses.replace(compiled.exec_options, trace=True)
        reset_batch_stats()
        batch = run_batch(device.interpreter, compiled.kernel, rows, traced)
        stats = batch_stats()
        assert stats["fallback_batches"] == 1 and stats["vector_batches"] == 0
        assert all(r is None or r.trace for r in batch)

    def test_vectorize_false_forces_reference_path(self):
        cfg = GeneratorConfig.fp32()
        program = ProgramGenerator(cfg).generate(2)
        rows = _rows(cfg, program.kernel, 2, 4)
        device = get_stack("nvcc").device()
        compiled = NvccCompiler().compile(program, OPTS2[1])
        reset_batch_stats()
        forced = device.execute_batch(compiled, rows, vectorize=False)
        assert batch_stats()["fallback_batches"] == 1
        assert [_sig(r) for r in forced] == [
            _sig(r) for r in _reference(device, compiled, rows)
        ]


# ---------------------------------------------------------- artifact cache
class TestArtifactCache:
    def test_hit_is_equal_to_fresh_compile(self):
        cfg = GeneratorConfig.fp32()
        program = ProgramGenerator(cfg).generate(5)
        cache = ArtifactCache()
        compiler = NvccCompiler()
        first = cache.compile_sweep(compiler, program, PAPER_OPT_SETTINGS)
        again = cache.compile_sweep(compiler, program, PAPER_OPT_SETTINGS)
        assert cache.hits == len(PAPER_OPT_SETTINGS)
        for label in first:
            assert first[label] == again[label]
            assert first[label] == compiler.compile(program, first[label].opt)

    def test_hipify_twin_shares_nvcc_artifact_not_hipcc(self):
        """nvcc compiles a twin byte-identically (shared artifact);
        hipcc's preprocess diverges, so the twin gets its own key."""
        cfg = GeneratorConfig.fp32()
        program = ProgramGenerator(cfg).generate(6)
        twin = dataclasses.replace(program, via_hipify=True)
        cache = ArtifactCache()
        opt = PAPER_OPT_SETTINGS[0]
        assert cache.key(NvccCompiler(), program, opt) == cache.key(
            NvccCompiler(), twin, opt
        )
        assert cache.key(HipccCompiler(), program, opt) != cache.key(
            HipccCompiler(), twin, opt
        )

    def test_hit_rebinds_program_id(self):
        cfg = GeneratorConfig.fp32()
        program = ProgramGenerator(cfg).generate(7)
        clone = dataclasses.replace(program, program_id="prog-clone")
        cache = ArtifactCache()
        opt = PAPER_OPT_SETTINGS[0]
        cache.compile(NvccCompiler(), program, opt)
        hit = cache.compile(NvccCompiler(), clone, opt)
        assert cache.hits == 1
        assert hit.program_id == "prog-clone"
        assert hit.kernel == cache.compile(NvccCompiler(), program, opt).kernel

    def test_persistent_tier_round_trip(self, tmp_path):
        cfg = GeneratorConfig.fp32()
        program = ProgramGenerator(cfg).generate(8)
        opt = PAPER_OPT_SETTINGS[2]
        first = ArtifactCache(path=tmp_path / "artifacts")
        fresh = first.compile(NvccCompiler(), program, opt)
        reopened = ArtifactCache(path=tmp_path / "artifacts")
        warm = reopened.compile(NvccCompiler(), program, opt)
        assert reopened.disk_hits == 1 and reopened.misses == 0
        assert warm == fresh

    def test_torn_artifact_recompiles(self, tmp_path):
        cfg = GeneratorConfig.fp32()
        program = ProgramGenerator(cfg).generate(9)
        opt = PAPER_OPT_SETTINGS[0]
        path = tmp_path / "artifacts"
        cache = ArtifactCache(path=path)
        key = cache.key(NvccCompiler(), program, opt)
        (path / f"{key}.pkl").write_bytes(b"\x80\x04torn")
        compiled = cache.compile(NvccCompiler(), program, opt)
        assert cache.misses == 1 and cache.disk_hits == 0
        assert compiled == NvccCompiler().compile(program, opt)


# --------------------------------------------------- ledger byte equality
def _flatten(service, chunks):
    out = []
    try:
        for outcomes in service.run_sweeps(chunks):
            for o in outcomes:
                out.append(
                    (
                        o.tag,
                        o.test_id,
                        o.nvcc_executions,
                        o.nvcc_cache_hits,
                        sorted(
                            (d.test_id, d.input_index, d.opt_label, d.dclass.value)
                            for d in o.iter_discrepancies()
                        ),
                    )
                )
    finally:
        service.close()
    return out


class TestLedgerEquality:
    def _chunks(self, corpus, cache):
        return [
            [
                SweepRequest(test=t, opts=OPTS2, tag=("native",), cache=cache),
                SweepRequest(
                    test=DerivedTestSpec(base=t),
                    opts=OPTS2,
                    tag=("hipify",),
                    cache=cache,
                ),
            ]
            for t in corpus.tests
        ]

    def test_outcomes_invariant_to_artifact_cache_and_workers(self, tmp_path):
        """The headline invariant: outcomes are identical with the
        artifact cache on or off, at workers 0, 2, and 4 — and the two
        serial lanes persist byte-identical run stores.  (Pool workers
        use chunk-private stores by design, so the parent store file is
        a serial-lane artifact only.)"""
        corpus = build_corpus(
            GeneratorConfig.fp32(inputs_per_program=2), 6, root_seed=99
        )
        results = {}
        lanes = [
            ("on-w0", True, SerialBackend()),
            ("off-w0", False, SerialBackend()),
            ("on-w2", True, ProcessPoolBackend(2)),
            ("on-w4", True, ProcessPoolBackend(4)),
        ]
        for label, artifacts, backend in lanes:
            cache = CachePolicy(reuse=True, scope="shared", artifacts=artifacts)
            store_path = tmp_path / f"store-{label}.jsonl"
            service = ExecutionService(
                backend=backend, store=RunStore(path=store_path)
            )
            results[label] = _flatten(service, self._chunks(corpus, cache))
            if label == "on-w0":
                assert service.artifacts.hits > 0
        baseline = results["on-w0"]
        for label, _, _ in lanes[1:]:
            assert results[label] == baseline, label
        assert (tmp_path / "store-off-w0.jsonl").read_bytes() == (
            tmp_path / "store-on-w0.jsonl"
        ).read_bytes()

    def test_scalar_lane_matches_batched(self, tmp_path):
        """vectorize=False (per-row scalar interpreter) produces the same
        outcomes and the same persisted store bytes."""
        corpus = build_corpus(
            GeneratorConfig.fp32(inputs_per_program=3), 4, root_seed=17
        )

        def lane(label, runner):
            shared = CachePolicy(reuse=True, scope="shared")
            chunks = [
                [SweepRequest(test=t, opts=OPTS2, runner=runner, cache=shared)]
                for t in corpus.tests
            ]
            store_path = tmp_path / f"store-{label}.jsonl"
            service = ExecutionService(store=RunStore(path=store_path))
            return _flatten(service, chunks), store_path.read_bytes()

        batched, batched_store = lane("batched", RunnerSpec())
        scalar, scalar_store = lane("scalar", RunnerSpec(vectorize=False))
        assert batched == scalar
        assert batched_store == scalar_store

    def test_fuzz_ledger_invariant_at_workers_0_2_4(self, tmp_path):
        config = FuzzConfig(
            seed=23,
            n_seed_programs=8,
            inputs_per_program=2,
            max_mutants=8,
            batch_size=4,
            minimize=False,
        )
        for workers in (0, 2, 4):
            run_fuzz(
                dataclasses.replace(config, workers=workers),
                ledger=tmp_path / f"w{workers}.jsonl",
            )
        w0 = (tmp_path / "w0.jsonl").read_bytes()
        assert (tmp_path / "w2.jsonl").read_bytes() == w0
        assert (tmp_path / "w4.jsonl").read_bytes() == w0


# ------------------------------------------------------- runner rename
class TestRunSweepRename:
    def test_legacy_cache_keywords_still_work(self):
        corpus = build_corpus(
            GeneratorConfig.fp32(inputs_per_program=2), 1, root_seed=5
        )
        test = corpus.tests[0]
        store = RunStore()
        from repro.exec.content import content_id, content_text
        from repro.exec.store import BoundRunCache

        key = content_id(
            test.fptype, content_text(test.program.kernel, test.inputs)
        )
        new = DifferentialRunner()
        new_view = BoundRunCache(store, key)
        new.run_sweep(test, OPTS2, populate_lhs_cache=new_view)
        legacy = DifferentialRunner()
        legacy_view = BoundRunCache(store, key)
        pairs = legacy.run_sweep(test, OPTS2, nvcc_cache=legacy_view)
        assert legacy.lhs_executions == 0  # replayed via the alias
        assert legacy_view.hits == 2 * len(test.inputs)
        assert all(p.nvcc_runs for p in pairs.values())
