"""Tests for the Varity-style generator (repro.varity)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GrammarError
from repro.fp.classify import classify_value
from repro.fp.types import FPType
from repro.ir.metrics import aggregate_metrics, compute_metrics
from repro.ir.nodes import Call
from repro.ir.types import IRType
from repro.ir.validate import validate_kernel
from repro.ir.visitor import collect, walk
from repro.varity.config import GeneratorConfig, InputClassWeights
from repro.varity.corpus import build_corpus, build_corpus_slice, regenerate_test
from repro.varity.generator import ProgramGenerator
from repro.varity.grammar import GrammarWeights
from repro.varity.inputs import InputGenerator, InputVector
from repro.varity.testcase import TestCase


# ------------------------------------------------------------------ config
class TestConfig:
    def test_defaults_valid(self):
        GeneratorConfig().validate()

    def test_fp32_preset(self):
        assert GeneratorConfig.fp32().fptype is FPType.FP32

    def test_bad_param_range_rejected(self):
        cfg = GeneratorConfig(min_float_params=5, max_float_params=2)
        with pytest.raises(GrammarError):
            cfg.validate()

    def test_bad_probability_rejected(self):
        cfg = GeneratorConfig(p_array_param=1.5)
        with pytest.raises(GrammarError):
            cfg.validate()

    def test_input_weights_validate(self):
        w = InputClassWeights(zero=-1.0)
        with pytest.raises(GrammarError):
            w.validate()

    def test_exponent_ranges_known_classes(self):
        cfg = GeneratorConfig.fp64()
        lo, hi = cfg.exponent_range("subnormal")
        assert lo < hi < -300  # below the FP64 normal range

    def test_exponent_range_unknown_class(self):
        with pytest.raises(GrammarError):
            GeneratorConfig().exponent_range("bogus")

    def test_fp32_literals_stay_finite(self):
        cfg = GeneratorConfig.fp32()
        lo, hi = cfg.literal_exponent_range
        assert 10.0**hi < 3.4e38

    def test_grammar_weight_validation(self):
        g = GrammarWeights()
        g.p_loop = 1.7
        with pytest.raises(ValueError):
            g.validate()


# --------------------------------------------------------------- generator
class TestGenerator:
    def test_deterministic(self):
        gen = ProgramGenerator(GeneratorConfig.fp64())
        a = gen.generate(seed=99)
        b = gen.generate(seed=99)
        assert a.kernel == b.kernel

    def test_different_seeds_differ(self):
        gen = ProgramGenerator(GeneratorConfig.fp64())
        assert gen.generate(1).kernel != gen.generate(2).kernel

    def test_signature_shape(self):
        p = ProgramGenerator(GeneratorConfig.fp64()).generate(5)
        params = p.kernel.params
        assert params[0].name == "comp" and params[0].type is IRType.FLOAT
        assert params[1].name == "var_1" and params[1].type is IRType.INT
        assert all(q.name.startswith("var_") for q in params[1:])

    @pytest.mark.parametrize("seed", range(30))
    def test_always_valid(self, seed):
        p = ProgramGenerator(GeneratorConfig.fp64()).generate(seed)
        assert validate_kernel(p.kernel) == []

    @pytest.mark.parametrize("seed", range(15))
    def test_fp32_always_valid(self, seed):
        p = ProgramGenerator(GeneratorConfig.fp32()).generate(seed)
        assert validate_kernel(p.kernel) == []
        assert p.fptype is FPType.FP32

    def test_generated_calls_are_supported(self):
        from repro.devices.mathlib.base import SUPPORTED_FUNCTIONS

        for seed in range(25):
            p = ProgramGenerator(GeneratorConfig.fp64()).generate(seed)
            for stmt in p.kernel.body:
                for node in walk(stmt):
                    if isinstance(node, Call):
                        assert node.func in SUPPORTED_FUNCTIONS

    def test_loop_depth_respects_limit(self):
        cfg = GeneratorConfig.fp64(max_loop_depth=2)
        for seed in range(25):
            p = ProgramGenerator(cfg).generate(seed)
            assert compute_metrics(p.kernel).max_loop_depth <= 2

    def test_fp32_literals_carry_suffix(self):
        from repro.ir.nodes import Const

        p = ProgramGenerator(GeneratorConfig.fp32()).generate(3)
        consts = [
            n for stmt in p.kernel.body for n in walk(stmt) if isinstance(n, Const)
        ]
        assert consts, "expected at least one literal"
        assert all(c.text.endswith("F") for c in consts if c.text)

    def test_literal_text_matches_value(self):
        from repro.ir.nodes import Const

        for seed in range(10):
            p = ProgramGenerator(GeneratorConfig.fp64()).generate(seed)
            for stmt in p.kernel.body:
                for n in walk(stmt):
                    if isinstance(n, Const) and n.text:
                        assert float(n.text) == n.value

    def test_feature_coverage_across_corpus(self, small_fp64_corpus):
        stats = aggregate_metrics(t.program for t in small_fp64_corpus)
        # Table III grammar features all appear somewhere in a small corpus.
        assert stats["frac_with_loops"] > 0.3
        assert stats["frac_with_conditionals"] > 0.2
        assert stats["frac_with_math_calls"] > 0.5
        assert stats["frac_with_temporaries"] > 0.3

    def test_generate_many_ids(self):
        programs = ProgramGenerator(GeneratorConfig.fp64()).generate_many(7, 3)
        assert [p.program_id for p in programs] == [
            "prog-fp64-000000", "prog-fp64-000001", "prog-fp64-000002",
        ]


# ------------------------------------------------------------------ inputs
class TestInputs:
    def test_vector_alignment(self, small_fp64_corpus):
        t = small_fp64_corpus.tests[0]
        for vec in t.inputs:
            assert len(vec.values) == len(t.program.kernel.params)

    def test_int_param_gets_int(self, small_fp64_corpus):
        for t in small_fp64_corpus:
            for vec in t.inputs:
                for value, param in zip(vec.values, t.program.kernel.params):
                    if param.type is IRType.INT:
                        assert isinstance(value, int)
                    else:
                        assert isinstance(value, float)

    def test_deterministic(self, small_fp64_corpus):
        cfg = GeneratorConfig.fp64()
        gen = InputGenerator(cfg)
        k = small_fp64_corpus.tests[0].program.kernel
        assert gen.generate(k, 42).texts == gen.generate(k, 42).texts

    def test_inputs_are_finite(self, small_fp64_corpus, small_fp32_corpus):
        for corpus in (small_fp64_corpus, small_fp32_corpus):
            for t in corpus:
                for vec in t.inputs:
                    for v, p in zip(vec.values, t.program.kernel.params):
                        if p.type is not IRType.INT:
                            assert math.isfinite(v)

    def test_loop_bounds_in_range(self, small_fp64_corpus):
        cfg = small_fp64_corpus.config
        for t in small_fp64_corpus:
            for vec in t.inputs:
                for v, p in zip(vec.values, t.program.kernel.params):
                    if p.type is IRType.INT:
                        assert cfg.min_loop_bound <= v <= cfg.max_loop_bound

    def test_from_texts_roundtrip(self, small_fp64_corpus):
        t = small_fp64_corpus.tests[0]
        vec = t.inputs[0]
        rebuilt = InputVector.from_texts(vec.texts, t.program.kernel)
        assert rebuilt.values == vec.values

    def test_from_texts_arity_checked(self, small_fp64_corpus):
        t = small_fp64_corpus.tests[0]
        with pytest.raises(ValueError):
            InputVector.from_texts(["+0.0"], t.program.kernel)

    def test_exceptional_classes_sampled(self):
        """Across many draws, zeros, subnormals and huge values all appear."""
        cfg = GeneratorConfig.fp64()
        gen = InputGenerator(cfg)
        k = ProgramGenerator(cfg).generate(0).kernel
        values = []
        for seed in range(120):
            vec = gen.generate(k, seed)
            values.extend(
                v for v, p in zip(vec.values, k.params) if p.type is not IRType.INT
            )
        assert any(v == 0.0 for v in values)
        assert any(0 < abs(v) < 2.3e-308 for v in values), "no subnormals sampled"
        assert any(abs(v) > 1e300 for v in values), "no huge values sampled"

    def test_line_format(self, small_fp64_corpus):
        vec = small_fp64_corpus.tests[0].inputs[0]
        assert vec.line == " ".join(vec.texts)


# ------------------------------------------------------------------ corpus
class TestCorpus:
    def test_slices_compose(self):
        cfg = GeneratorConfig.fp64(inputs_per_program=2)
        full = build_corpus(cfg, 10, root_seed=5)
        left = build_corpus_slice(cfg, 0, 5, root_seed=5)
        right = build_corpus_slice(cfg, 5, 10, root_seed=5)
        assert [t.test_id for t in left] + [t.test_id for t in right] == [
            t.test_id for t in full
        ]
        assert left.tests[0].program.kernel == full.tests[0].program.kernel
        assert right.tests[0].inputs == full.tests[5].inputs

    def test_counts(self, small_fp64_corpus):
        assert small_fp64_corpus.n_programs == 25
        assert small_fp64_corpus.n_runs_per_option_per_compiler == 25 * 3

    def test_hipified_twin(self, small_fp64_corpus):
        twin = small_fp64_corpus.hipified()
        assert all(t.program.via_hipify for t in twin)
        assert [t.inputs for t in twin] == [t.inputs for t in small_fp64_corpus]

    def test_regenerate_test_from_metadata(self, small_fp64_corpus):
        t = small_fp64_corpus.tests[3]
        meta = t.to_meta_dict()
        rebuilt = regenerate_test(
            small_fp64_corpus.config,
            seed=meta["seed"],
            test_id=meta["test_id"],
            input_texts=meta["inputs"],
        )
        assert rebuilt.program.kernel == t.program.kernel
        assert rebuilt.inputs == t.inputs

    def test_testcase_requires_inputs(self, small_fp64_corpus):
        with pytest.raises(ValueError):
            TestCase(small_fp64_corpus.tests[0].program, [])

    def test_testcase_checks_arity(self, small_fp64_corpus):
        t0, t1 = small_fp64_corpus.tests[0], small_fp64_corpus.tests[1]
        if len(t0.program.kernel.params) != len(t1.program.kernel.params):
            with pytest.raises(ValueError):
                TestCase(t0.program, t1.inputs)
