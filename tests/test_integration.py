"""End-to-end integration tests: the paper's whole workflow in one place."""

from __future__ import annotations

import math
import subprocess
import sys

import pytest

import repro
from repro.analysis.per_opt import per_opt_counts
from repro.analysis.report import render_campaign_report
from repro.analysis.summary import summary_dict
from repro.cli import build_parser, main as cli_main
from repro.compilers.options import OptLevel, OptSetting, PAPER_OPT_SETTINGS
from repro.harness.campaign import CampaignConfig, run_campaign
from repro.harness.differential import DiscrepancyClass


@pytest.fixture(scope="module")
def medium_result():
    """A campaign big enough to show the paper's statistical shapes."""
    config = CampaignConfig(
        seed=424242,
        n_programs_fp64=140,
        n_programs_fp32=120,
        inputs_per_program=4,
    )
    return run_campaign(config)


class TestEndToEndShapes:
    """The qualitative claims of Tables IV/V/VII/IX must emerge."""

    def test_discrepancies_found_everywhere(self, medium_result):
        for arm in medium_result.arms.values():
            assert arm.n_discrepancies > 0, f"arm {arm.arm} found nothing"

    def test_fp64_rate_in_paper_band(self, medium_result):
        # Paper: 0.98% of FP64 runs.  Accept the same order of magnitude.
        rate = medium_result.arms["fp64"].discrepancy_percent
        assert 0.1 < rate < 5.0

    def test_hipify_at_least_as_divergent_as_native(self, medium_result):
        """Table IV/VII: HIPIFY conversion adds discrepancies (1.10% vs 0.98%)."""
        native = medium_result.arms["fp64"].n_discrepancies
        hipify = medium_result.arms["fp64_hipify"].n_discrepancies
        assert hipify >= native

    def test_fp32_fast_math_explosion(self, medium_result):
        """Table IX: O3_FM dominates every other FP32 level by a wide margin."""
        counts = per_opt_counts(medium_result.arms["fp32"])
        fm = sum(counts["O3_FM"].values())
        o0 = sum(counts["O0"].values())
        o3 = sum(counts["O3"].values())
        assert fm > 3 * max(1, o3)
        assert fm > 3 * max(1, o0)

    def test_fp64_level_shape(self, medium_result):
        """Tables V/VII shape: O0 and O1 counts are of the same size
        (optimization both adds divergences — contraction — and removes
        some — compile-time folding), and fast math adds more on top."""
        counts = per_opt_counts(medium_result.arms["fp64"])
        o0 = sum(counts["O0"].values())
        o1 = sum(counts["O1"].values())
        fm = sum(counts["O3_FM"].values())
        o3 = sum(counts["O3"].values())
        assert o1 >= 0.6 * o0
        assert fm > o3

    def test_fp64_o1_o2_o3_identical(self, medium_result):
        """The paper measured identical O1/O2/O3 rows; our pipelines make
        that exact, so the measured counts must match exactly."""
        for arm_name in ("fp64", "fp64_hipify"):
            counts = per_opt_counts(medium_result.arms[arm_name])
            assert counts["O1"] == counts["O2"] == counts["O3"]

    def test_num_num_dominates_fp64(self, medium_result):
        """Table V: Num,Num is the most frequent FP64 class overall."""
        counts = per_opt_counts(medium_result.arms["fp64"])
        totals = {c: 0 for c in DiscrepancyClass}
        for opt in counts:
            for c, n in counts[opt].items():
                totals[c] += n
        assert totals[DiscrepancyClass.NUM_NUM] == max(totals.values())

    def test_fp32_worse_than_fp64_overall(self, medium_result):
        data = summary_dict(medium_result)
        assert data["fp32"]["discrepancy_percent"] > data["fp64"]["discrepancy_percent"]

    def test_report_renders(self, medium_result):
        text = render_campaign_report(medium_result)
        assert "Table IV" in text and "O3_FM" in text


class TestQuickstart:
    def test_quick_differential_test(self):
        report = repro.quick_differential_test(seed=1, n_programs=6)
        assert "Table IV" in report

    def test_version(self):
        assert repro.__version__


class TestCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == "tiny"

    def test_cli_tiny_run(self, capsys):
        rc = cli_main(["--scale", "tiny", "--fp64-programs", "6",
                       "--fp32-programs", "4", "--inputs", "2", "--no-adjacency"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table IV" in out

    def test_cli_json_output(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        rc = cli_main([
            "--scale", "tiny", "--fp64-programs", "4", "--fp32-programs", "2",
            "--inputs", "2", "--no-adjacency", "--json", str(path),
        ])
        assert rc == 0 and path.exists()
        from repro.utils.jsonio import load_json

        data = load_json(path)
        assert "arms" in data and "fp64" in data["arms"]

    def test_cli_no_arms_flags(self, capsys):
        rc = cli_main([
            "--scale", "tiny", "--fp64-programs", "4", "--inputs", "2",
            "--no-hipify", "--no-fp32", "--no-adjacency",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HIPIFY" not in out.split("Table V")[0] or True  # fp64 only
        assert "Table IX" not in out


class TestCrossComponentConsistency:
    def test_campaign_discrepancies_reproducible_individually(self, medium_result, runner):
        """Any campaign discrepancy can be replayed as a standalone test —
        contribution (a)/(b) of §I: small self-contained reproducers."""
        from repro.varity.corpus import build_corpus

        arm = medium_result.arms["fp64"]
        if not arm.discrepancies:
            pytest.skip("no discrepancies found")
        d = arm.discrepancies[0]
        config = medium_result.config
        corpus = build_corpus(
            config.generator_config(repro.FPType.FP64),
            config.n_programs_fp64,
            config.arm_seed("fp64"),
        )
        test = next(t for t in corpus if t.test_id == d.test_id)
        rn, ra, _, _ = runner.run_single(
            test, OptSetting.from_label(d.opt_label), d.input_index
        )
        assert rn.printed == d.nvcc_printed
        assert ra.printed == d.hipcc_printed

    def test_reproducer_renders_to_sources(self, medium_result):
        """Every discrepant test renders to shippable .cu and .hip files."""
        from repro.codegen.cuda import render_cuda
        from repro.codegen.hip import render_hip
        from repro.hipify.translator import hipify_source
        from repro.varity.corpus import build_corpus

        arm = medium_result.arms["fp64"]
        d = arm.discrepancies[0]
        config = medium_result.config
        corpus = build_corpus(
            config.generator_config(repro.FPType.FP64),
            config.n_programs_fp64,
            config.arm_seed("fp64"),
        )
        test = next(t for t in corpus if t.test_id == d.test_id)
        cuda = render_cuda(test.program)
        assert hipify_source(cuda, banner=False) == render_hip(test.program)
