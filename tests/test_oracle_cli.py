"""Tests for the ``repro-oracle`` command-line interface."""

from __future__ import annotations

import pytest

from repro.oracle.cli import build_parser, main


class TestArgumentValidation:
    def test_resume_requires_ledger(self, capsys):
        with pytest.raises(SystemExit):
            main(["--resume"])
        assert "--resume requires --ledger" in capsys.readouterr().err

    def test_unknown_relation_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--relations", "mul-one,nope"])
        assert "unknown relations: nope" in capsys.readouterr().err

    def test_falsy_zero_programs_rejected(self, capsys):
        # the falsy-zero bug class: an explicit 0 must error loudly, not
        # silently fall back to the preset.
        with pytest.raises(SystemExit):
            main(["--programs", "0"])
        assert "--programs must be >= 1" in capsys.readouterr().err

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["--workers", "-1"])

    def test_parser_knows_all_flags(self):
        args = build_parser().parse_args(
            ["--seed", "7", "--fptype", "fp64", "--programs", "3", "--inputs", "2",
             "--relations", "mul-one", "--ulp-bound", "8", "--workers", "2",
             "--ledger", "x.jsonl", "--report"]
        )
        assert args.seed == 7 and args.fptype == "fp64"
        assert args.relations == "mul-one" and args.ulp_bound == 8


class TestEndToEnd:
    def test_session_with_ledger_report_and_resume(self, tmp_path, capsys):
        ledger = tmp_path / "oracle.jsonl"
        argv = [
            "--seed", "2024", "--programs", "5", "--inputs", "2",
            "--ledger", str(ledger), "--report",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "oracle session: 5 programs" in out
        assert "Metamorphic-relation violations" in out
        assert "deduped (cache hits)" in out
        first_bytes = ledger.read_bytes()

        # Resuming a finished session re-executes nothing and leaves the
        # ledger untouched.
        assert main(argv + ["--resume"]) == 0
        err = capsys.readouterr().err
        assert "resumed 5 programs" in err
        assert ledger.read_bytes() == first_bytes

    def test_relation_subset_runs_only_those(self, tmp_path, capsys):
        assert (
            main(
                ["--programs", "3", "--inputs", "2",
                 "--relations", "fastmath-flag"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fastmath-flag" in out
        # the table lists only requested relations
        assert "mul-one" not in out
