"""Property-based tests (hypothesis) for the mcts search layer.

The tree search sits between the deterministic mutation layer and the
byte-identical ledger, so its own invariants are load-bearing for every
replay path:

* every edit sequence the search emits is **valid IR** and **replays**
  — ``_replay_lineage`` over the recorded ``(corpus_index, lineage)``
  rebuilds the exact program content (this is what ledger resume leans
  on);
* the whole trajectory — expansion order, skips, rewards — is a pure
  function of ``(seed, tree policy)``: two fresh searches driven
  identically produce identical traces;
* ``invalidate`` is an exact inverse of speculative ``prepare`` marks:
  the tree state round-trips (this is what worker-count invariance
  leans on);
* coverage extraction is **total**: any generated program, and any
  mutant of one, yields a feature set without raising.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.coverage import CoverageTracker, kernel_features
from repro.fuzz.engine import FuzzConfig, _LazyCorpus, _replay_lineage
from repro.fuzz.mutators import MUTATION_NAMES, apply_mutation
from repro.fuzz.search import MAX_DEPTH, MctsSearch, blend_reward
from repro.exec import content_text
from repro.ir.validate import validate_kernel
from repro.varity.config import GeneratorConfig
from repro.varity.generator import ProgramGenerator

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _make_search(seed: int):
    """A tiny standalone search (no execution service needed): the tree
    is driven directly with synthetic rewards."""
    config = FuzzConfig(
        seed=seed, n_seed_programs=4, inputs_per_program=1, minimize=False
    )
    corpus = _LazyCorpus(config)
    return config, corpus, MctsSearch(config, corpus, hot_indices=[0])


def _drive(search: MctsSearch, steps: int):
    """Run ``steps`` simulations with a deterministic synthetic reward
    schedule (novel signature every 5th evaluation, one violation every
    7th); returns the full per-iteration trace."""
    trace = []
    evaluated: set = set()
    for i in range(steps):
        p = search.prepare(i, evaluated, set())
        if p.skip is not None:
            search.commit_skip(p)
            trace.append((i, "skip", p.skip, p.arm))
            continue
        evaluated.add(p.content_id)
        reward = search.commit_evaluated(
            p, novel=1 if i % 5 == 0 else 0, violations=1 if i % 7 == 0 else 0
        )
        trace.append((i, p.kind, p.arm, p.corpus_index, p.lineage, reward))
    return trace


def _tree_state(search: MctsSearch):
    """A comparable snapshot of everything ``prepare`` reads."""
    nodes = []

    def walk(node):
        nodes.append(
            (
                node.corpus_index,
                node.lineage,
                node.visits,
                node.reward_sum,
                tuple(sorted(node.arm_visits.items())),
                tuple(sorted(node.arm_reward.items())),
                tuple(sorted(node.dead_arms)),
                node.dead,
                len(node.children),
            )
        )
        for child in node.children:
            walk(child)

    for child in search.children:
        walk(child)
    return (
        tuple(nodes),
        search.root_visits,
        search.explore_visits,
        search.explore_reward,
        tuple(sorted(search.global_arm_visits.items())),
        tuple(sorted(search.global_arm_reward.items())),
    )


class TestEditChains:
    @given(seed=seeds, steps=st.integers(min_value=1, max_value=40))
    @settings(max_examples=12, deadline=None)
    def test_prepared_chains_are_valid_and_replay(self, seed, steps):
        """Every evaluated prep carries valid IR whose recorded lineage
        replays to the identical program content, at bounded depth."""
        config, corpus, search = _make_search(seed)
        evaluated: set = set()
        for i in range(steps):
            p = search.prepare(i, evaluated, set())
            if p.skip is not None:
                search.commit_skip(p)
                continue
            kernel = p.test.program.kernel
            assert not validate_kernel(kernel)
            assert len(p.lineage) <= MAX_DEPTH
            replayed = _replay_lineage(corpus, p.corpus_index, p.lineage)
            assert content_text(replayed, p.test.inputs) == p.content
            evaluated.add(p.content_id)
            search.commit_evaluated(p, novel=i % 2, violations=0)

    @given(seed=seeds, steps=st.integers(min_value=1, max_value=40))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_trace(self, seed, steps):
        """Same (seed, policy) ⇒ identical expansion order, identical
        skips, identical reward trace — across fresh search instances."""
        _, _, first = _make_search(seed)
        _, _, second = _make_search(seed)
        assert _drive(first, steps) == _drive(second, steps)
        assert _tree_state(first) == _tree_state(second)

    @given(
        seed=seeds,
        committed=st.integers(min_value=0, max_value=10),
        speculated=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=12, deadline=None)
    def test_invalidate_restores_tree_exactly(self, seed, committed, speculated):
        """Speculative prepares roll back to the last committed tree
        state — the invariant behind worker-count-invariant ledgers."""
        _, _, search = _make_search(seed)
        _drive(search, committed)
        snapshot = _tree_state(search)
        evaluated: set = set()
        overlay: set = set()
        for i in range(committed, committed + speculated):
            search.prepare(i, evaluated, overlay)
        search.invalidate()
        assert _tree_state(search) == snapshot

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_rewards_bounded_and_monotone(self, seed):
        """The blend maps counts into [0, 1), monotonically."""
        del seed  # blend is count-driven; the property needs no rng
        last = -1.0
        for novel in range(6):
            reward = blend_reward(novel, 0, 0)
            assert 0.0 <= reward < 1.0
            assert reward > last
            last = reward
        assert blend_reward(1, 0, 0) > blend_reward(0, 1, 0) > blend_reward(0, 0, 1) > 0.0
        assert blend_reward(0, 0, 0) == 0.0


class TestCoverageTotality:
    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_extraction_total_over_generated_programs(self, seed):
        """kernel_features never raises and always yields the structural
        minimum (precision + the three depth features)."""
        program = ProgramGenerator(GeneratorConfig.fp32()).generate(seed)
        features = kernel_features(program.kernel)
        assert features
        assert any(f.startswith("fptype:") for f in features)
        for axis in ("call-depth:", "expr-depth:", "loop-depth:"):
            assert any(f.startswith(axis) for f in features)

    @given(seed=seeds, mutation_index=st.integers(min_value=0, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_extraction_total_over_mutants(self, seed, mutation_index):
        """Totality survives the mutators, donor-based ones included."""
        gen = ProgramGenerator(GeneratorConfig.fp32())
        kernel = gen.generate(seed).kernel
        donor = gen.generate(seed + 1).kernel
        mutation = MUTATION_NAMES[mutation_index]
        mutant = apply_mutation(kernel, mutation, seed, donor)
        if mutant is not None:
            assert kernel_features(mutant)

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_observe_novelty_is_first_time_only(self, seed):
        """Observing the same program twice mints novelty exactly once."""
        program = ProgramGenerator(GeneratorConfig.fp32()).generate(seed)
        features = kernel_features(program.kernel)
        tracker = CoverageTracker()
        assert tracker.observe(features) == len(features)
        assert tracker.observe(features) == 0
        assert tracker.programs_observed == 2
        assert tracker.seen == set(features)
